//! Vertex-induced subgraph views.
//!
//! Many of the paper's procedures run an auxiliary algorithm "on the
//! subgraph `G(H_i)` induced by an H-set" (§6.2). In the distributed
//! implementation a vertex restricts attention to neighbors in its own set,
//! but verifiers and centralized reference computations need a materialized
//! induced subgraph with a mapping back to the parent graph.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};

/// A materialized induced subgraph `G(S)` plus the vertex mapping.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The induced subgraph with vertices renumbered `0..S.len()`.
    pub graph: Graph,
    /// `local -> parent` vertex map (sorted ascending).
    pub to_parent: Vec<VertexId>,
    /// `parent -> local` map; `u32::MAX` for vertices outside `S`.
    pub to_local: Vec<u32>,
}

impl InducedSubgraph {
    /// Builds the subgraph of `g` induced by the vertex set `members`
    /// (`members[v] == true` means `v ∈ S`).
    pub fn new(g: &Graph, members: &[bool]) -> Self {
        assert_eq!(members.len(), g.n());
        let to_parent: Vec<VertexId> = g.vertices().filter(|&v| members[v as usize]).collect();
        let mut to_local = vec![u32::MAX; g.n()];
        for (i, &v) in to_parent.iter().enumerate() {
            to_local[v as usize] = i as u32;
        }
        let mut b = GraphBuilder::new(to_parent.len());
        for &v in &to_parent {
            for u in g.neighbors(v).iter().copied() {
                if u > v && members[u as usize] {
                    b.push(to_local[v as usize], to_local[u as usize]);
                }
            }
        }
        InducedSubgraph {
            graph: b.build(),
            to_parent,
            to_local,
        }
    }

    /// Builds from an explicit vertex list.
    pub fn from_vertices(g: &Graph, vs: &[VertexId]) -> Self {
        let mut members = vec![false; g.n()];
        for &v in vs {
            members[v as usize] = true;
        }
        Self::new(g, &members)
    }

    /// Number of vertices in the subgraph.
    pub fn n(&self) -> usize {
        self.graph.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn induced_triangle_from_k4() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .build();
        let s = InducedSubgraph::from_vertices(&g, &[0, 2, 3]);
        assert_eq!(s.n(), 3);
        assert_eq!(s.graph.m(), 3);
        assert_eq!(s.to_parent, vec![0, 2, 3]);
        assert_eq!(s.to_local[2], 1);
        assert_eq!(s.to_local[1], u32::MAX);
    }

    #[test]
    fn empty_selection() {
        let g = GraphBuilder::new(3).edges([(0, 1)]).build();
        let s = InducedSubgraph::new(&g, &[false, false, false]);
        assert_eq!(s.n(), 0);
        assert_eq!(s.graph.m(), 0);
    }

    #[test]
    fn drops_crossing_edges() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let s = InducedSubgraph::from_vertices(&g, &[0, 1, 3]);
        // Only edge (0,1) survives; (1,2) and (2,3) cross the boundary.
        assert_eq!(s.graph.m(), 1);
        assert!(s.graph.has_edge(0, 1));
    }
}
