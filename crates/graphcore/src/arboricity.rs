//! Arboricity and degeneracy machinery.
//!
//! The arboricity `a(G)` is the minimum number of forests covering `E(G)`.
//! The paper's algorithms assume each vertex knows `a` (§6.1). For graphs
//! produced by [`crate::gen`] the arboricity is known by construction; for
//! arbitrary graphs this module provides:
//!
//! * [`degeneracy`] — the smallest `d` such that every subgraph has a
//!   vertex of degree ≤ d, computed by the linear-time peeling algorithm.
//!   It brackets arboricity: `a ≤ d ≤ 2a − 1`.
//! * [`nash_williams_lower_bound`] — the density bound
//!   `a ≥ max_H ⌈m(H)/(n(H)−1)⌉` evaluated on the degeneracy peeling
//!   suffixes (a practical, cheap family of witnesses that is exact on all
//!   our generator families).
//! * [`ArboricityEstimate`] — the bracket `[lower, upper]` plus the value
//!   algorithms should be parameterized with.

use crate::csr::{Graph, VertexId};

/// Result of estimating arboricity from structure alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArboricityEstimate {
    /// Nash–Williams density lower bound over peeling suffixes.
    pub lower: usize,
    /// Degeneracy (an upper bound on 2a−1, i.e. `a ≥ ⌈(d+1)/2⌉`… and also
    /// an upper bound on arboricity-like quantities used by the algorithms;
    /// `a ≤ d` always holds).
    pub upper: usize,
}

impl ArboricityEstimate {
    /// A safe value to feed algorithms that require `a` when the true
    /// arboricity is unknown: the degeneracy upper bound.
    pub fn safe_a(&self) -> usize {
        self.upper.max(1)
    }
}

/// Computes the degeneracy of `g` and a degeneracy ordering, via the
/// standard bucket-queue peeling in `O(n + m)`.
///
/// Returns `(degeneracy, order)` where `order` lists vertices in peeling
/// order (each vertex has ≤ degeneracy neighbors later in the order).
pub fn degeneracy_ordering(g: &Graph) -> (usize, Vec<VertexId>) {
    let n = g.n();
    if n == 0 {
        return (0, Vec::new());
    }
    let maxd = g.max_degree();
    let mut deg: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); maxd + 1];
    for v in g.vertices() {
        buckets[deg[v as usize]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cur = 0usize;
    for _ in 0..n {
        // Find the lowest nonempty bucket holding a live vertex. `cur` can
        // drop by at most 1 per removal, so start a bit below.
        cur = cur.saturating_sub(1);
        let v = loop {
            match buckets[cur].pop() {
                Some(v) if !removed[v as usize] && deg[v as usize] == cur => break v,
                Some(_) => continue, // stale entry
                None => cur += 1,
            }
        };
        removed[v as usize] = true;
        degeneracy = degeneracy.max(cur);
        order.push(v);
        for &u in g.neighbors(v) {
            if !removed[u as usize] {
                let d = &mut deg[u as usize];
                *d -= 1;
                buckets[*d].push(u);
            }
        }
    }
    (degeneracy, order)
}

/// Degeneracy of `g` (0 for edgeless graphs).
pub fn degeneracy(g: &Graph) -> usize {
    degeneracy_ordering(g).0
}

/// Nash–Williams lower bound `a ≥ ⌈m(H)/(n(H)−1)⌉` maximized over the
/// suffixes of the degeneracy peeling order (the densest-core witnesses).
pub fn nash_williams_lower_bound(g: &Graph) -> usize {
    let (_, order) = degeneracy_ordering(g);
    let n = g.n();
    if n < 2 {
        return 0;
    }
    // Walk the peeling order backwards, growing the suffix subgraph and
    // counting the edges internal to it.
    let mut in_suffix = vec![false; n];
    let mut edges = 0usize;
    let mut best = if g.m() > 0 { 1 } else { 0 };
    for (k, &v) in order.iter().enumerate().rev() {
        edges += g
            .neighbors(v)
            .iter()
            .filter(|&&u| in_suffix[u as usize])
            .count();
        in_suffix[v as usize] = true;
        let size = n - k;
        if size >= 2 {
            best = best.max(edges.div_ceil(size - 1));
        }
    }
    best
}

/// Full bracket estimate.
pub fn estimate(g: &Graph) -> ArboricityEstimate {
    ArboricityEstimate {
        lower: nash_williams_lower_bound(g),
        upper: degeneracy(g).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen;

    #[test]
    fn tree_is_1_degenerate() {
        let g = GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (1, 3), (3, 4)])
            .build();
        assert_eq!(degeneracy(&g), 1);
        assert_eq!(nash_williams_lower_bound(&g), 1);
    }

    #[test]
    fn cycle_is_2_degenerate_arboricity_2() {
        let g = gen::cycle(10);
        assert_eq!(degeneracy(&g), 2);
        // a(C_n) = 2 by Nash–Williams: m/(n-1) = 10/9 -> ceil = 2.
        assert_eq!(nash_williams_lower_bound(&g), 2);
    }

    #[test]
    fn clique_bounds() {
        let g = gen::clique(6);
        // degeneracy(K_6) = 5; a(K_6) = ceil(15/5) = 3.
        assert_eq!(degeneracy(&g), 5);
        assert_eq!(nash_williams_lower_bound(&g), 3);
        let est = estimate(&g);
        assert!(est.lower <= est.upper);
    }

    #[test]
    fn empty_and_trivial() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(degeneracy(&g), 0);
        assert_eq!(nash_williams_lower_bound(&g), 0);
        let g1 = GraphBuilder::new(1).build();
        assert_eq!(degeneracy(&g1), 0);
        assert_eq!(estimate(&g1).safe_a(), 1);
    }

    #[test]
    fn peeling_order_property() {
        // Every vertex has at most `degeneracy` neighbors later in the order.
        let g = gen::grid(8, 8);
        let (d, order) = degeneracy_ordering(&g);
        let mut pos = vec![0usize; g.n()];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for (i, &v) in order.iter().enumerate() {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&u| pos[u as usize] > i)
                .count();
            assert!(later <= d, "vertex {v} has {later} later neighbors, d={d}");
        }
        assert_eq!(d, 2); // grids are 2-degenerate
    }

    #[test]
    fn star_is_1_degenerate() {
        let g = gen::star(100);
        assert_eq!(degeneracy(&g), 1);
        assert_eq!(nash_williams_lower_bound(&g), 1);
    }
}
