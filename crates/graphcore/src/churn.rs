//! Seeded edge churn over a fixed vertex set — the dynamic-graph
//! workload model.
//!
//! A [`ChurnPlan`] describes a deterministic sequence of edit batches
//! (edge inserts and deletes) over a base graph: [`churn_sequence`]
//! materializes the batches with a ChaCha-seeded RNG, validating each
//! delete against the evolving edge set and each insert against
//! non-adjacency, and [`apply`] rebuilds the CSR graph after a batch.
//! The vertex set never changes, so a prior run's per-vertex outputs
//! stay index-aligned across batches — the invariant the engine's
//! warm-start seam (`simlocal`) relies on.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// A deterministic churn schedule: how many batches, how many edits per
/// batch, and the seed that pins the whole sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnPlan {
    /// RNG seed; equal plans over equal base graphs yield equal batches.
    pub seed: u64,
    /// Number of edit batches.
    pub batches: usize,
    /// Edge insertions per batch (between currently non-adjacent pairs).
    pub inserts_per_batch: usize,
    /// Edge deletions per batch (of currently present edges).
    pub deletes_per_batch: usize,
}

/// One batch of edits, valid against the graph state it was drawn for:
/// every delete is a present edge, every insert a absent non-loop pair.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EditBatch {
    /// Edges added (stored with `u < v`).
    pub inserts: Vec<(VertexId, VertexId)>,
    /// Edges removed (stored with `u < v`).
    pub deletes: Vec<(VertexId, VertexId)>,
}

impl EditBatch {
    /// Every vertex incident to an edit — the seeds of the engine's
    /// reactivation BFS.
    pub fn endpoints(&self) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self
            .inserts
            .iter()
            .chain(&self.deletes)
            .flat_map(|&(u, v)| [u, v])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total edit count.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether the batch contains no edits.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// Draws the plan's batches against the evolving graph, starting from
/// `base`. Batch `i` is valid for (and [`apply`]-able to) the graph
/// produced by applying batches `0..i` in order.
///
/// Deletes are drawn uniformly from the current edges; inserts are
/// rejection-sampled uniform non-adjacent pairs. If the graph runs out
/// of edges (or of absent pairs) a batch simply carries fewer edits.
pub fn churn_sequence(base: &Graph, plan: &ChurnPlan) -> Vec<EditBatch> {
    assert!(base.n() >= 2, "churn needs at least two vertices");
    let n = base.n();
    let mut rng = ChaCha8Rng::seed_from_u64(plan.seed);
    // Current edge multiverse: dense vec for indexed deletion draws plus
    // a set for O(1) adjacency tests. Swap-remove keeps draws O(1); the
    // vec order is RNG-history-deterministic, so sequences reproduce.
    let mut edges: Vec<(VertexId, VertexId)> = base.edges().map(|(_, e)| e).collect();
    let mut present: HashSet<(VertexId, VertexId)> = edges.iter().copied().collect();
    let mut batches = Vec::with_capacity(plan.batches);
    for _ in 0..plan.batches {
        let mut batch = EditBatch::default();
        for _ in 0..plan.deletes_per_batch {
            if edges.is_empty() {
                break;
            }
            let i = rng.gen_range(0..edges.len());
            let e = edges.swap_remove(i);
            present.remove(&e);
            batch.deletes.push(e);
        }
        let max_edges = n * (n - 1) / 2;
        for _ in 0..plan.inserts_per_batch {
            if present.len() >= max_edges {
                break;
            }
            // Rejection sampling; sparse workloads accept almost surely.
            let e = loop {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u == v {
                    continue;
                }
                let e = if u < v { (u, v) } else { (v, u) };
                if !present.contains(&e) {
                    break e;
                }
            };
            present.insert(e);
            edges.push(e);
            batch.inserts.push(e);
        }
        batches.push(batch);
    }
    batches
}

/// Applies one batch to `g`, returning the edited graph (same vertex
/// set). Panics if a delete is absent or an insert already present —
/// batches are only valid against the graph they were drawn for.
pub fn apply(g: &Graph, batch: &EditBatch) -> Graph {
    let mut present: HashSet<(VertexId, VertexId)> = g.edges().map(|(_, e)| e).collect();
    for &e in &batch.deletes {
        assert!(present.remove(&e), "delete {e:?}: edge not present");
    }
    for &e in &batch.inserts {
        assert!(e.0 != e.1, "insert {e:?}: self-loop");
        assert!(present.insert(e), "insert {e:?}: edge already present");
    }
    let mut sorted: Vec<(VertexId, VertexId)> = present.into_iter().collect();
    sorted.sort_unstable();
    GraphBuilder::new(g.n()).edges(sorted).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn plan(seed: u64) -> ChurnPlan {
        ChurnPlan {
            seed,
            batches: 4,
            inserts_per_batch: 3,
            deletes_per_batch: 2,
        }
    }

    #[test]
    fn sequence_is_deterministic() {
        let g = gen::grid(8, 8);
        let a = churn_sequence(&g, &plan(7));
        let b = churn_sequence(&g, &plan(7));
        assert_eq!(a, b);
        let c = churn_sequence(&g, &plan(8));
        assert_ne!(a, c, "different seeds give different sequences");
    }

    #[test]
    fn batches_apply_cleanly_in_order() {
        let base = gen::grid(6, 6);
        let batches = churn_sequence(&base, &plan(3));
        assert_eq!(batches.len(), 4);
        let mut g = base.clone();
        for b in &batches {
            assert_eq!(b.len(), 5);
            g = apply(&g, b);
            assert!(g.check_invariants());
            assert_eq!(g.n(), base.n(), "vertex set is fixed");
        }
        // Net edge drift: +3 −2 per batch.
        assert_eq!(g.m(), base.m() + 4);
    }

    #[test]
    fn endpoints_are_sorted_unique() {
        let b = EditBatch {
            inserts: vec![(3, 5), (1, 3)],
            deletes: vec![(0, 1)],
        };
        assert_eq!(b.endpoints(), vec![0, 1, 3, 5]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "edge not present")]
    fn apply_rejects_stale_delete() {
        let g = gen::path(4);
        let b = EditBatch {
            inserts: vec![],
            deletes: vec![(0, 3)],
        };
        apply(&g, &b);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn apply_rejects_duplicate_insert() {
        let g = gen::path(4);
        let b = EditBatch {
            inserts: vec![(0, 1)],
            deletes: vec![],
        };
        apply(&g, &b);
    }
}
