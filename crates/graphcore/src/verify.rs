//! Verifiers for every solution concept in the paper (§5, §7.8).
//!
//! Each checker returns `Ok(())` or a descriptive `Err(String)` naming a
//! witness of the violation — test failures then point straight at the bug.
//! All checkers are centralized (they see the whole graph); they are the
//! ground truth the distributed protocols are validated against.

use crate::arboricity;
use crate::csr::{Graph, VertexId};
use crate::subgraph::InducedSubgraph;

/// Result type for verifiers.
pub type Check = Result<(), String>;

/// Checks a proper vertex coloring: adjacent vertices get distinct colors,
/// and the number of distinct colors is at most `max_colors` (pass
/// `usize::MAX` to skip the palette-size check).
pub fn proper_vertex_coloring(g: &Graph, colors: &[u64], max_colors: usize) -> Check {
    if colors.len() != g.n() {
        return Err(format!(
            "color vector has {} entries for n={}",
            colors.len(),
            g.n()
        ));
    }
    for (e, (u, v)) in g.edges() {
        if colors[u as usize] == colors[v as usize] {
            return Err(format!(
                "edge {e} = ({u},{v}) is monochromatic with color {}",
                colors[u as usize]
            ));
        }
    }
    let used = count_distinct(colors);
    if used > max_colors {
        return Err(format!("{used} colors used, budget {max_colors}"));
    }
    Ok(())
}

/// Number of distinct values in `xs`.
pub fn count_distinct(xs: &[u64]) -> usize {
    let mut v: Vec<u64> = xs.to_vec();
    v.sort_unstable();
    v.dedup();
    v.len()
}

/// Checks a list coloring: proper and each vertex's color is in its list.
pub fn list_coloring(g: &Graph, colors: &[u64], lists: &[Vec<u64>]) -> Check {
    proper_vertex_coloring(g, colors, usize::MAX)?;
    for v in g.vertices() {
        if !lists[v as usize].contains(&colors[v as usize]) {
            return Err(format!(
                "vertex {v} colored {} outside its list {:?}",
                colors[v as usize], lists[v as usize]
            ));
        }
    }
    Ok(())
}

/// Checks a `d`-defective coloring: every vertex has at most `d` neighbors
/// sharing its color (§7.8: an `⌊a/t⌋`-defective `O(t²)`-coloring).
pub fn defective_coloring(g: &Graph, colors: &[u64], d: usize, max_colors: usize) -> Check {
    if colors.len() != g.n() {
        return Err(format!(
            "color vector has {} entries for n={}",
            colors.len(),
            g.n()
        ));
    }
    for v in g.vertices() {
        let defect = g
            .neighbors(v)
            .iter()
            .filter(|&&u| colors[u as usize] == colors[v as usize])
            .count();
        if defect > d {
            return Err(format!("vertex {v} has defect {defect} > {d}"));
        }
    }
    let used = count_distinct(colors);
    if used > max_colors {
        return Err(format!("{used} colors used, budget {max_colors}"));
    }
    Ok(())
}

/// Checks a `b`-arbdefective `c`-coloring (§7.8): at most `c` colors and
/// every color class induces a subgraph of arboricity ≤ `b`. Arboricity of
/// the class is certified by its degeneracy-based bracket: we require the
/// Nash–Williams lower bound ≤ b (a *sound* check: if the density already
/// exceeds `b` the coloring is definitely invalid; construction-level tests
/// complement this with exact checks on known families).
pub fn arbdefective_coloring(g: &Graph, colors: &[u64], b: usize, max_colors: usize) -> Check {
    let used = count_distinct(colors);
    if used > max_colors {
        return Err(format!("{used} colors used, budget {max_colors}"));
    }
    let mut palette: Vec<u64> = colors.to_vec();
    palette.sort_unstable();
    palette.dedup();
    for c in palette {
        let members: Vec<bool> = colors.iter().map(|&x| x == c).collect();
        let sub = InducedSubgraph::new(g, &members);
        let nw = arboricity::nash_williams_lower_bound(&sub.graph);
        if nw > b {
            return Err(format!(
                "color class {c} has Nash–Williams density {nw} > arbdefect bound {b}"
            ));
        }
    }
    Ok(())
}

/// Checks a proper edge coloring with at most `max_colors` colors:
/// edges sharing an endpoint get distinct colors.
pub fn proper_edge_coloring(g: &Graph, colors: &[u64], max_colors: usize) -> Check {
    if colors.len() != g.m() {
        return Err(format!(
            "edge-color vector has {} entries for m={}",
            colors.len(),
            g.m()
        ));
    }
    for v in g.vertices() {
        let inc = g.incident_edges(v);
        let mut seen: Vec<u64> = inc.iter().map(|&e| colors[e as usize]).collect();
        seen.sort_unstable();
        if let Some(w) = seen.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!(
                "vertex {v} has two incident edges colored {}",
                w[0]
            ));
        }
    }
    let used = count_distinct(colors);
    if used > max_colors {
        return Err(format!("{used} edge colors used, budget {max_colors}"));
    }
    Ok(())
}

/// Checks that `in_set` is a maximal independent set.
pub fn maximal_independent_set(g: &Graph, in_set: &[bool]) -> Check {
    if in_set.len() != g.n() {
        return Err(format!(
            "MIS vector has {} entries for n={}",
            in_set.len(),
            g.n()
        ));
    }
    for (e, (u, v)) in g.edges() {
        if in_set[u as usize] && in_set[v as usize] {
            return Err(format!(
                "edge {e} = ({u},{v}) has both endpoints in the set"
            ));
        }
    }
    for v in g.vertices() {
        if !in_set[v as usize] && !g.neighbors(v).iter().any(|&u| in_set[u as usize]) {
            return Err(format!(
                "vertex {v} is outside the set and has no neighbor inside"
            ));
        }
    }
    Ok(())
}

/// Checks that `in_matching` (indexed by edge id) is a maximal matching.
pub fn maximal_matching(g: &Graph, in_matching: &[bool]) -> Check {
    if in_matching.len() != g.m() {
        return Err(format!(
            "matching vector has {} entries for m={}",
            in_matching.len(),
            g.m()
        ));
    }
    // Disjointness: each vertex covered at most once.
    let mut covered = vec![false; g.n()];
    for (e, (u, v)) in g.edges() {
        if in_matching[e as usize] {
            for w in [u, v] {
                if covered[w as usize] {
                    return Err(format!(
                        "vertex {w} covered by two matching edges (edge {e})"
                    ));
                }
                covered[w as usize] = true;
            }
        }
    }
    // Maximality: every non-matching edge touches a covered vertex.
    for (e, (u, v)) in g.edges() {
        if !in_matching[e as usize] && !covered[u as usize] && !covered[v as usize] {
            return Err(format!(
                "edge {e} = ({u},{v}) could be added to the matching"
            ));
        }
    }
    Ok(())
}

/// Checks a forest decomposition given as a per-edge forest label in
/// `0..num_forests` and a per-edge parent endpoint (orientation toward the
/// parent): each label class, restricted to out-edges, must give every
/// vertex out-degree ≤ 1 within the class and contain no cycles — i.e. each
/// class is a forest of out-trees.
pub fn forest_decomposition(
    g: &Graph,
    labels: &[u32],
    heads: &[Option<VertexId>],
    num_forests: usize,
) -> Check {
    if labels.len() != g.m() || heads.len() != g.m() {
        return Err("label/head vectors must have one entry per edge".into());
    }
    for (e, _) in g.edges() {
        if heads[e as usize].is_none() {
            return Err(format!("edge {e} is unoriented"));
        }
        if labels[e as usize] as usize >= num_forests {
            return Err(format!(
                "edge {e} labeled {} but only {num_forests} forests allowed",
                labels[e as usize]
            ));
        }
    }
    // Out-degree within each label: each vertex has at most one outgoing
    // edge per label (edges out of v with label ℓ).
    let mut out_label: std::collections::HashSet<(VertexId, u32)> =
        std::collections::HashSet::new();
    for (e, (u, v)) in g.edges() {
        let head = heads[e as usize].unwrap();
        let tail = if head == u { v } else { u };
        if !out_label.insert((tail, labels[e as usize])) {
            return Err(format!(
                "vertex {tail} has two outgoing edges labeled {}",
                labels[e as usize]
            ));
        }
    }
    // Acyclicity of the whole orientation implies each class is acyclic.
    let orient = crate::orientation::Orientation::from_heads(g, heads);
    if !orient.is_acyclic(g) {
        return Err("orientation contains a directed cycle".into());
    }
    Ok(())
}

/// Checks the H-partition property (§6.1): `h_index[v] = i ≥ 1` for every
/// vertex, and every `v ∈ H_i` has at most `bound` neighbors in
/// `H_i ∪ H_{i+1} ∪ …`.
pub fn h_partition(g: &Graph, h_index: &[u32], bound: usize) -> Check {
    if h_index.len() != g.n() {
        return Err(format!(
            "h_index has {} entries for n={}",
            h_index.len(),
            g.n()
        ));
    }
    for v in g.vertices() {
        if h_index[v as usize] == 0 {
            return Err(format!("vertex {v} was never assigned to an H-set"));
        }
        let i = h_index[v as usize];
        let ahead = g
            .neighbors(v)
            .iter()
            .filter(|&&u| h_index[u as usize] >= i)
            .count();
        if ahead > bound {
            return Err(format!(
                "vertex {v} in H_{i} has {ahead} neighbors in H_≥{i}, bound {bound}"
            ));
        }
    }
    Ok(())
}

/// Convenience: asserts a check passed, printing the witness otherwise.
#[track_caller]
pub fn assert_ok(c: Check) {
    if let Err(msg) = c {
        panic!("verification failed: {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen;

    fn p3() -> Graph {
        gen::path(3)
    }

    #[test]
    fn coloring_accepts_and_rejects() {
        let g = p3();
        assert!(proper_vertex_coloring(&g, &[0, 1, 0], 2).is_ok());
        assert!(proper_vertex_coloring(&g, &[0, 0, 1], 2).is_err());
        assert!(proper_vertex_coloring(&g, &[0, 1, 2], 2).is_err()); // budget
    }

    #[test]
    fn list_coloring_checks_lists() {
        let g = p3();
        let lists = vec![vec![0, 1], vec![1, 2], vec![0]];
        assert!(list_coloring(&g, &[0, 1, 0], &lists).is_ok());
        assert!(list_coloring(&g, &[1, 2, 0], &lists).is_ok());
        assert!(list_coloring(&g, &[0, 2, 1], &lists).is_err()); // 1 ∉ list(2)
    }

    #[test]
    fn defective_coloring_bounds_defect() {
        let g = gen::star(5);
        // All-one color: center has defect 4.
        assert!(defective_coloring(&g, &[7, 7, 7, 7, 7], 4, 1).is_ok());
        assert!(defective_coloring(&g, &[7, 7, 7, 7, 7], 3, 1).is_err());
    }

    #[test]
    fn arbdefective_checks_density() {
        let g = gen::clique(6); // arboricity 3
        let colors = vec![0u64; 6];
        assert!(arbdefective_coloring(&g, &colors, 3, 1).is_ok());
        assert!(arbdefective_coloring(&g, &colors, 2, 1).is_err());
    }

    #[test]
    fn edge_coloring_detects_conflict() {
        let g = p3();
        assert!(proper_edge_coloring(&g, &[0, 1], 2).is_ok());
        assert!(proper_edge_coloring(&g, &[0, 0], 2).is_err());
    }

    #[test]
    fn mis_checks() {
        let g = p3();
        assert!(maximal_independent_set(&g, &[true, false, true]).is_ok());
        assert!(maximal_independent_set(&g, &[true, true, false]).is_err()); // not independent
        assert!(maximal_independent_set(&g, &[true, false, false]).is_err()); // not maximal
        assert!(maximal_independent_set(&g, &[false, true, false]).is_ok());
    }

    #[test]
    fn matching_checks() {
        let g = gen::path(4); // edges 0:(0,1) 1:(1,2) 2:(2,3)
        assert!(maximal_matching(&g, &[true, false, true]).is_ok());
        assert!(maximal_matching(&g, &[false, true, false]).is_ok());
        assert!(maximal_matching(&g, &[true, true, false]).is_err()); // overlap at 1
        assert!(maximal_matching(&g, &[true, false, false]).is_err()); // (2,3) addable
    }

    #[test]
    fn forest_decomposition_valid_path() {
        let g = gen::path(4);
        let heads: Vec<Option<VertexId>> = g.edges().map(|(_, (_, v))| Some(v)).collect();
        let labels = vec![0u32; g.m()];
        assert!(forest_decomposition(&g, &labels, &heads, 1).is_ok());
    }

    #[test]
    fn forest_decomposition_rejects_double_out() {
        // Star center 0 with all edges oriented away from 0, same label:
        // vertex 0 has out-degree 3 in one label.
        let g = gen::star(4);
        let heads: Vec<Option<VertexId>> = g
            .edges()
            .map(|(_, (u, v))| Some(if u == 0 { v } else { u }))
            .collect();
        let labels = vec![0u32; g.m()];
        assert!(forest_decomposition(&g, &labels, &heads, 1).is_err());
        // Distinct labels per out-edge make it valid.
        let labels: Vec<u32> = (0..g.m() as u32).collect();
        assert!(forest_decomposition(&g, &labels, &heads, g.m()).is_ok());
    }

    #[test]
    fn h_partition_property() {
        // Path 0-1-2: H_1 = {0,2}, H_2 = {1}, bound 2.
        let g = p3();
        assert!(h_partition(&g, &[1, 2, 1], 2).is_ok());
        assert!(h_partition(&g, &[1, 0, 1], 2).is_err()); // unassigned
                                                          // Clique with everyone in H_1, bound 1: each vertex sees 2 ahead.
        let k = GraphBuilder::new(3).edges([(0, 1), (1, 2), (0, 2)]).build();
        assert!(h_partition(&k, &[1, 1, 1], 1).is_err());
        assert!(h_partition(&k, &[1, 1, 1], 2).is_ok());
    }
}
