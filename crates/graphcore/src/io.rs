//! Plain-text graph serialization.
//!
//! Two formats:
//!
//! * **edge list** — one `u v` pair per line, `#`-comments allowed; the
//!   header line `n <count>` pins the vertex count (isolated vertices
//!   would otherwise be lost);
//! * **DIMACS-like** — `p edge <n> <m>` header and `e u v` lines with
//!   1-based endpoints, for interchange with classic graph tooling.
//!
//! Both round-trip through [`crate::Graph`]; parse errors carry the line
//! number.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use std::fmt::Write as _;

/// Serializes a graph as an edge list with an `n` header.
pub fn to_edge_list(g: &Graph) -> String {
    let mut s = String::with_capacity(16 + g.m() * 8);
    let _ = writeln!(s, "n {}", g.n());
    for (_, (u, v)) in g.edges() {
        let _ = writeln!(s, "{u} {v}");
    }
    s
}

/// Parses the edge-list format produced by [`to_edge_list`].
pub fn from_edge_list(text: &str) -> Result<Graph, String> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("n") => {
                let val = it
                    .next()
                    .ok_or_else(|| format!("line {}: missing vertex count", lineno + 1))?;
                n = Some(
                    val.parse()
                        .map_err(|e| format!("line {}: bad vertex count: {e}", lineno + 1))?,
                );
            }
            Some(tok) => {
                let u: VertexId = tok
                    .parse()
                    .map_err(|e| format!("line {}: bad endpoint: {e}", lineno + 1))?;
                let v: VertexId = it
                    .next()
                    .ok_or_else(|| format!("line {}: missing second endpoint", lineno + 1))?
                    .parse()
                    .map_err(|e| format!("line {}: bad endpoint: {e}", lineno + 1))?;
                edges.push((u, v));
            }
            None => unreachable!("non-empty line yields a token"),
        }
    }
    let n = n.ok_or("missing `n <count>` header")?;
    let mut b = GraphBuilder::new(n);
    for (i, (u, v)) in edges.into_iter().enumerate() {
        if (u as usize) >= n || (v as usize) >= n {
            return Err(format!("edge {i}: endpoint out of range for n={n}"));
        }
        if u == v {
            return Err(format!("edge {i}: self-loop {u}"));
        }
        b.push(u, v);
    }
    Ok(b.build())
}

/// Serializes in DIMACS-like format (1-based endpoints).
pub fn to_dimacs(g: &Graph) -> String {
    let mut s = String::with_capacity(32 + g.m() * 10);
    let _ = writeln!(s, "p edge {} {}", g.n(), g.m());
    for (_, (u, v)) in g.edges() {
        let _ = writeln!(s, "e {} {}", u + 1, v + 1);
    }
    s
}

/// Parses the DIMACS-like format produced by [`to_dimacs`].
pub fn from_dimacs(text: &str) -> Result<Graph, String> {
    let mut builder: Option<GraphBuilder> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["p", "edge", n, _m] => {
                let n: usize = n
                    .parse()
                    .map_err(|e| format!("line {}: bad n: {e}", lineno + 1))?;
                builder = Some(GraphBuilder::new(n));
            }
            ["e", u, v] => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| format!("line {}: edge before header", lineno + 1))?;
                let u: u64 = u
                    .parse()
                    .map_err(|e| format!("line {}: bad u: {e}", lineno + 1))?;
                let v: u64 = v
                    .parse()
                    .map_err(|e| format!("line {}: bad v: {e}", lineno + 1))?;
                if u == 0 || v == 0 {
                    return Err(format!("line {}: DIMACS endpoints are 1-based", lineno + 1));
                }
                b.push((u - 1) as VertexId, (v - 1) as VertexId);
            }
            _ => return Err(format!("line {}: unrecognized: {line}", lineno + 1)),
        }
    }
    Ok(builder.ok_or("missing `p edge` header")?.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_list_roundtrip() {
        let g = gen::grid(5, 7);
        let text = to_edge_list(&g);
        let back = from_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn edge_list_preserves_isolated_vertices() {
        let g = crate::GraphBuilder::new(5).edges([(0, 4)]).build();
        let back = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(back.n(), 5);
        assert_eq!(back.m(), 1);
    }

    #[test]
    fn edge_list_comments_and_blanks() {
        let g = from_edge_list("# comment\n\nn 3\n0 1\n# another\n1 2\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_errors() {
        assert!(from_edge_list("0 1\n").is_err()); // no header
        assert!(from_edge_list("n 2\n0 5\n").is_err()); // out of range
        assert!(from_edge_list("n 2\n1 1\n").is_err()); // self-loop
        assert!(from_edge_list("n x\n").is_err()); // bad count
        assert!(from_edge_list("n 2\n0\n").is_err()); // missing endpoint
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = gen::cycle(9);
        let back = from_dimacs(&to_dimacs(&g)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn dimacs_errors() {
        assert!(from_dimacs("e 1 2\n").is_err()); // edge before header
        assert!(from_dimacs("p edge 3 1\ne 0 1\n").is_err()); // 0-based
        assert!(from_dimacs("p edge 3 1\nq 1 2\n").is_err()); // unknown line
    }
}
