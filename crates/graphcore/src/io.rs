//! Plain-text graph serialization and file ingestion.
//!
//! Three formats:
//!
//! * **edge list** — one `u v` pair per line, `#`-comments allowed; the
//!   header line `n <count>` pins the vertex count (isolated vertices
//!   would otherwise be lost);
//! * **DIMACS-like** — `p edge <n> <m>` header and `e u v` lines with
//!   1-based endpoints, for interchange with classic graph tooling;
//! * **Matrix Market** — `%%MatrixMarket matrix coordinate …` banner and
//!   1-based `i j [val]` coordinate lines, the de-facto interchange format
//!   of the SuiteSparse collection.
//!
//! All round-trip through [`crate::Graph`]; parse errors carry the line
//! number.
//!
//! Real-world files are rarely simple graphs, so the strict parsers are
//! complemented by an ingestion path: [`parse_raw`] reads any of the three
//! formats *leniently* (self-loops and parallel edges allowed) into a
//! [`RawGraph`], and [`normalize`] turns that into a simple [`Graph`]
//! plus an [`IngestReport`] recording what was dropped and the realized
//! arboricity bracket of what remains. [`ingest_path`] bundles format
//! sniffing, lenient parsing, and normalization for workload loading.

use crate::arboricity::{self, ArboricityEstimate};
use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use std::fmt::Write as _;
use std::path::Path;

/// Serializes a graph as an edge list with an `n` header.
pub fn to_edge_list(g: &Graph) -> String {
    let mut s = String::with_capacity(16 + g.m() * 8);
    let _ = writeln!(s, "n {}", g.n());
    for (_, (u, v)) in g.edges() {
        let _ = writeln!(s, "{u} {v}");
    }
    s
}

/// Parses the edge-list format produced by [`to_edge_list`].
pub fn from_edge_list(text: &str) -> Result<Graph, String> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("n") => {
                let val = it
                    .next()
                    .ok_or_else(|| format!("line {}: missing vertex count", lineno + 1))?;
                n = Some(
                    val.parse()
                        .map_err(|e| format!("line {}: bad vertex count: {e}", lineno + 1))?,
                );
            }
            Some(tok) => {
                let u: VertexId = tok
                    .parse()
                    .map_err(|e| format!("line {}: bad endpoint: {e}", lineno + 1))?;
                let v: VertexId = it
                    .next()
                    .ok_or_else(|| format!("line {}: missing second endpoint", lineno + 1))?
                    .parse()
                    .map_err(|e| format!("line {}: bad endpoint: {e}", lineno + 1))?;
                edges.push((u, v));
            }
            None => unreachable!("non-empty line yields a token"),
        }
    }
    let n = n.ok_or("missing `n <count>` header")?;
    let mut b = GraphBuilder::new(n);
    for (i, (u, v)) in edges.into_iter().enumerate() {
        if (u as usize) >= n || (v as usize) >= n {
            return Err(format!("edge {i}: endpoint out of range for n={n}"));
        }
        if u == v {
            return Err(format!("edge {i}: self-loop {u}"));
        }
        b.push(u, v);
    }
    Ok(b.build())
}

/// Serializes in DIMACS-like format (1-based endpoints).
pub fn to_dimacs(g: &Graph) -> String {
    let mut s = String::with_capacity(32 + g.m() * 10);
    let _ = writeln!(s, "p edge {} {}", g.n(), g.m());
    for (_, (u, v)) in g.edges() {
        let _ = writeln!(s, "e {} {}", u + 1, v + 1);
    }
    s
}

/// Parses the DIMACS-like format produced by [`to_dimacs`].
pub fn from_dimacs(text: &str) -> Result<Graph, String> {
    let mut builder: Option<GraphBuilder> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["p", "edge", n, _m] => {
                let n: usize = n
                    .parse()
                    .map_err(|e| format!("line {}: bad n: {e}", lineno + 1))?;
                builder = Some(GraphBuilder::new(n));
            }
            ["e", u, v] => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| format!("line {}: edge before header", lineno + 1))?;
                let u: u64 = u
                    .parse()
                    .map_err(|e| format!("line {}: bad u: {e}", lineno + 1))?;
                let v: u64 = v
                    .parse()
                    .map_err(|e| format!("line {}: bad v: {e}", lineno + 1))?;
                if u == 0 || v == 0 {
                    return Err(format!("line {}: DIMACS endpoints are 1-based", lineno + 1));
                }
                b.push((u - 1) as VertexId, (v - 1) as VertexId);
            }
            _ => return Err(format!("line {}: unrecognized: {line}", lineno + 1)),
        }
    }
    Ok(builder.ok_or("missing `p edge` header")?.build())
}

/// Serializes in Matrix Market coordinate format (`pattern symmetric`,
/// 1-based, lower triangle: each undirected edge appears once with
/// row > column).
pub fn to_matrix_market(g: &Graph) -> String {
    let mut s = String::with_capacity(64 + g.m() * 10);
    s.push_str("%%MatrixMarket matrix coordinate pattern symmetric\n");
    let _ = writeln!(s, "{} {} {}", g.n(), g.n(), g.m());
    for (_, (u, v)) in g.edges() {
        // Edges are stored with u < v; emit (v+1, u+1) so row > column.
        let _ = writeln!(s, "{} {}", v + 1, u + 1);
    }
    s
}

/// Parses Matrix Market coordinate files as produced by
/// [`to_matrix_market`] (and by the wider ecosystem: `real`/`integer`
/// fields are accepted with their values ignored, `general` symmetry is
/// accepted with mirrored entries deduplicated).
///
/// Strict like the other parsers: self-loops (diagonal entries) and
/// out-of-range endpoints are errors carrying the line number. Use
/// [`parse_raw`]/[`normalize`] for files that need cleaning.
pub fn from_matrix_market(text: &str) -> Result<Graph, String> {
    let raw = raw_from_matrix_market(text)?;
    let mut b = GraphBuilder::new(raw.n);
    for (i, &(u, v)) in raw.edges.iter().enumerate() {
        if u == v {
            return Err(format!("entry {i}: self-loop {u} (diagonal entry)"));
        }
        b.push(u, v);
    }
    Ok(b.build())
}

// ---------------------------------------------------------------------
// Lenient parsing + normalization (the ingestion path).
// ---------------------------------------------------------------------

/// A parsed-but-unvalidated graph: endpoints are range-checked, but
/// self-loops and parallel edges are preserved for [`normalize`] to
/// count and drop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawGraph {
    /// Declared vertex count (endpoints are all `< n`).
    pub n: usize,
    /// Edge multiset as listed in the file, orientation-normalized
    /// (`u ≤ v`) but otherwise untouched.
    pub edges: Vec<(VertexId, VertexId)>,
}

/// The on-disk formats the ingestion path understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileFormat {
    /// `n <count>` header + `u v` lines (0-based).
    EdgeList,
    /// `p edge n m` header + `e u v` lines (1-based).
    Dimacs,
    /// `%%MatrixMarket` banner + `i j [val]` lines (1-based).
    MatrixMarket,
}

impl FileFormat {
    /// Guesses the format from the file name and the first non-blank
    /// line. `.mtx` / a `%%MatrixMarket` banner → Matrix Market; a
    /// `p edge`/`c` DIMACS prelude or `.col`/`.dimacs` → DIMACS;
    /// everything else → edge list.
    pub fn sniff(path: &Path, text: &str) -> FileFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some("mtx") => return FileFormat::MatrixMarket,
            Some("col") | Some("dimacs") => return FileFormat::Dimacs,
            _ => {}
        }
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with("%%MatrixMarket") {
                return FileFormat::MatrixMarket;
            }
            if line.starts_with("p edge") || line.starts_with("p col") {
                return FileFormat::Dimacs;
            }
            if line.starts_with('c') && !line.starts_with('#') {
                continue; // DIMACS comment prelude — keep scanning.
            }
            break;
        }
        FileFormat::EdgeList
    }

    /// Human-readable name, for reports and `--list` output.
    pub fn label(self) -> &'static str {
        match self {
            FileFormat::EdgeList => "edge-list",
            FileFormat::Dimacs => "dimacs",
            FileFormat::MatrixMarket => "matrix-market",
        }
    }
}

/// Parses `text` leniently in the given format: format and range errors
/// still fail with line numbers, but self-loops and duplicate edges are
/// kept for [`normalize`] to report.
pub fn parse_raw(text: &str, fmt: FileFormat) -> Result<RawGraph, String> {
    match fmt {
        FileFormat::EdgeList => raw_from_edge_list(text),
        FileFormat::Dimacs => raw_from_dimacs(text),
        FileFormat::MatrixMarket => raw_from_matrix_market(text),
    }
}

fn orient(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

fn raw_from_edge_list(text: &str) -> Result<RawGraph, String> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("n") => {
                let val = it
                    .next()
                    .ok_or_else(|| format!("line {}: missing vertex count", lineno + 1))?;
                n = Some(
                    val.parse()
                        .map_err(|e| format!("line {}: bad vertex count: {e}", lineno + 1))?,
                );
            }
            Some(tok) => {
                let u: VertexId = tok
                    .parse()
                    .map_err(|e| format!("line {}: bad endpoint: {e}", lineno + 1))?;
                let v: VertexId = it
                    .next()
                    .ok_or_else(|| format!("line {}: missing second endpoint", lineno + 1))?
                    .parse()
                    .map_err(|e| format!("line {}: bad endpoint: {e}", lineno + 1))?;
                let n = n.ok_or_else(|| {
                    format!("line {}: edge before the `n <count>` header", lineno + 1)
                })?;
                if (u as usize) >= n || (v as usize) >= n {
                    return Err(format!(
                        "line {}: endpoint out of range for n={n}",
                        lineno + 1
                    ));
                }
                edges.push(orient(u, v));
            }
            None => unreachable!("non-empty line yields a token"),
        }
    }
    let n = n.ok_or("missing `n <count>` header")?;
    Ok(RawGraph { n, edges })
}

fn raw_from_dimacs(text: &str) -> Result<RawGraph, String> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["p", "edge", nn, _m] => {
                n = Some(
                    nn.parse()
                        .map_err(|e| format!("line {}: bad n: {e}", lineno + 1))?,
                );
            }
            ["e", u, v] => {
                let n = n.ok_or_else(|| format!("line {}: edge before header", lineno + 1))?;
                let u: u64 = u
                    .parse()
                    .map_err(|e| format!("line {}: bad u: {e}", lineno + 1))?;
                let v: u64 = v
                    .parse()
                    .map_err(|e| format!("line {}: bad v: {e}", lineno + 1))?;
                if u == 0 || v == 0 {
                    return Err(format!("line {}: DIMACS endpoints are 1-based", lineno + 1));
                }
                if u as usize > n || v as usize > n {
                    return Err(format!(
                        "line {}: endpoint out of range for n={n}",
                        lineno + 1
                    ));
                }
                edges.push(orient((u - 1) as VertexId, (v - 1) as VertexId));
            }
            _ => return Err(format!("line {}: unrecognized: {line}", lineno + 1)),
        }
    }
    let n = n.ok_or("missing `p edge` header")?;
    Ok(RawGraph { n, edges })
}

fn raw_from_matrix_market(text: &str) -> Result<RawGraph, String> {
    let mut lines = text.lines().enumerate();
    let (_, banner) = lines
        .next()
        .ok_or("empty file: missing %%MatrixMarket banner")?;
    let toks: Vec<&str> = banner.split_whitespace().collect();
    if toks.len() < 5 || toks[0] != "%%MatrixMarket" {
        return Err("line 1: missing `%%MatrixMarket` banner".into());
    }
    // Case-insensitive per the spec: `matrix coordinate <field> <symmetry>`.
    let lower: Vec<String> = toks[1..5].iter().map(|t| t.to_ascii_lowercase()).collect();
    if lower[0] != "matrix" || lower[1] != "coordinate" {
        return Err(format!(
            "line 1: only `matrix coordinate` supported, got `{} {}`",
            toks[1], toks[2]
        ));
    }
    match lower[2].as_str() {
        "pattern" | "real" | "integer" => {}
        f => return Err(format!("line 1: unsupported field `{f}`")),
    }
    match lower[3].as_str() {
        "symmetric" | "general" => {}
        s => return Err(format!("line 1: unsupported symmetry `{s}`")),
    }
    // Dimension line: first non-comment line after the banner.
    let mut dims: Option<(usize, usize)> = None;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (lineno, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match dims {
            None => {
                if toks.len() != 3 {
                    return Err(format!(
                        "line {}: expected `rows cols nnz` dimensions",
                        lineno + 1
                    ));
                }
                let rows: usize = toks[0]
                    .parse()
                    .map_err(|e| format!("line {}: bad row count: {e}", lineno + 1))?;
                let cols: usize = toks[1]
                    .parse()
                    .map_err(|e| format!("line {}: bad column count: {e}", lineno + 1))?;
                if rows != cols {
                    return Err(format!(
                        "line {}: adjacency matrix must be square ({rows}×{cols})",
                        lineno + 1
                    ));
                }
                dims = Some((rows, cols));
            }
            Some((n, _)) => {
                if toks.len() < 2 {
                    return Err(format!("line {}: missing column index", lineno + 1));
                }
                let i: u64 = toks[0]
                    .parse()
                    .map_err(|e| format!("line {}: bad row index: {e}", lineno + 1))?;
                let j: u64 = toks[1]
                    .parse()
                    .map_err(|e| format!("line {}: bad column index: {e}", lineno + 1))?;
                if i == 0 || j == 0 {
                    return Err(format!(
                        "line {}: Matrix Market indices are 1-based",
                        lineno + 1
                    ));
                }
                if i as usize > n || j as usize > n {
                    return Err(format!("line {}: index out of range for n={n}", lineno + 1));
                }
                edges.push(orient((i - 1) as VertexId, (j - 1) as VertexId));
            }
        }
    }
    let (n, _) = dims.ok_or("missing dimension line after the banner")?;
    Ok(RawGraph { n, edges })
}

/// Options for [`normalize`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NormalizeOptions {
    /// Keep only the largest connected component, relabeling its vertices
    /// compactly (ties broken by lowest original vertex id).
    pub largest_component: bool,
}

/// What ingestion found and did: raw vs kept sizes, dropped junk, the
/// component structure, and the realized arboricity bracket of the kept
/// graph (the `a` that parameterizes every algorithm in the suite).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestReport {
    /// Vertex count declared by the file.
    pub n_raw: usize,
    /// Edge lines in the file (before any cleaning).
    pub m_raw: usize,
    /// Self-loops dropped.
    pub self_loops: usize,
    /// Parallel duplicates dropped (beyond the first copy of each edge).
    pub duplicates: usize,
    /// Connected components of the cleaned graph (isolated vertices count).
    pub components: usize,
    /// Vertices kept after normalization.
    pub n: usize,
    /// Edges kept after normalization.
    pub m: usize,
    /// Realized arboricity bracket of the kept graph (Nash–Williams lower
    /// bound, degeneracy upper bound).
    pub arboricity: ArboricityEstimate,
}

/// Normalizes a [`RawGraph`] into a simple [`Graph`]: drops self-loops,
/// deduplicates parallel edges, optionally restricts to the largest
/// connected component, and reports the realized arboricity bracket.
pub fn normalize(raw: &RawGraph, opts: NormalizeOptions) -> (Graph, IngestReport) {
    let n_raw = raw.n;
    let m_raw = raw.edges.len();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(m_raw);
    let mut self_loops = 0usize;
    for &(u, v) in &raw.edges {
        if u == v {
            self_loops += 1;
        } else {
            edges.push(orient(u, v));
        }
    }
    edges.sort_unstable();
    let before = edges.len();
    edges.dedup();
    let duplicates = before - edges.len();

    // Union-find over the cleaned edges for the component census.
    let mut parent: Vec<u32> = (0..n_raw as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for &(u, v) in &edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru.max(rv) as usize] = ru.min(rv);
        }
    }
    let mut comp_size = vec![0usize; n_raw];
    for v in 0..n_raw as u32 {
        comp_size[find(&mut parent, v) as usize] += 1;
    }
    let components = comp_size.iter().filter(|&&s| s > 0).count();

    let (n, kept_edges) = if opts.largest_component && n_raw > 0 {
        // Lowest-root tie-break: max_by_key keeps the *last* max, so scan
        // for the first root achieving the maximum size instead.
        let best = comp_size.iter().copied().max().unwrap_or(0);
        let root = comp_size.iter().position(|&s| s == best).unwrap() as u32;
        let mut relabel = vec![u32::MAX; n_raw];
        let mut next = 0u32;
        for v in 0..n_raw as u32 {
            if find(&mut parent, v) == root {
                relabel[v as usize] = next;
                next += 1;
            }
        }
        let kept = edges
            .iter()
            .filter(|&&(u, _)| relabel[u as usize] != u32::MAX)
            .map(|&(u, v)| (relabel[u as usize], relabel[v as usize]))
            .collect();
        (next as usize, kept)
    } else {
        (n_raw, edges)
    };

    let mut b = GraphBuilder::new(n);
    for (u, v) in &kept_edges {
        b.push(*u, *v);
    }
    let g = b.build();
    let report = IngestReport {
        n_raw,
        m_raw,
        self_loops,
        duplicates,
        components,
        n: g.n(),
        m: g.m(),
        arboricity: arboricity::estimate(&g),
    };
    (g, report)
}

/// Loads, sniffs, leniently parses, and normalizes a graph file.
pub fn ingest_path(path: &Path, opts: NormalizeOptions) -> Result<(Graph, IngestReport), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let fmt = FileFormat::sniff(path, &text);
    let raw = parse_raw(&text, fmt).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(normalize(&raw, opts))
}

/// FNV-1a 64-bit content hash, used to key file-backed workloads by what
/// the file *contained*, not just where it lived.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_list_roundtrip() {
        let g = gen::grid(5, 7);
        let text = to_edge_list(&g);
        let back = from_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn edge_list_preserves_isolated_vertices() {
        let g = crate::GraphBuilder::new(5).edges([(0, 4)]).build();
        let back = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(back.n(), 5);
        assert_eq!(back.m(), 1);
    }

    #[test]
    fn edge_list_comments_and_blanks() {
        let g = from_edge_list("# comment\n\nn 3\n0 1\n# another\n1 2\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_errors() {
        assert!(from_edge_list("0 1\n").is_err()); // no header
        assert!(from_edge_list("n 2\n0 5\n").is_err()); // out of range
        assert!(from_edge_list("n 2\n1 1\n").is_err()); // self-loop
        assert!(from_edge_list("n x\n").is_err()); // bad count
        assert!(from_edge_list("n 2\n0\n").is_err()); // missing endpoint
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = gen::cycle(9);
        let back = from_dimacs(&to_dimacs(&g)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn dimacs_errors() {
        assert!(from_dimacs("e 1 2\n").is_err()); // edge before header
        assert!(from_dimacs("p edge 3 1\ne 0 1\n").is_err()); // 0-based
        assert!(from_dimacs("p edge 3 1\nq 1 2\n").is_err()); // unknown line
    }

    #[test]
    fn matrix_market_roundtrip() {
        let g = gen::grid(4, 6);
        let text = to_matrix_market(&g);
        assert!(text.starts_with("%%MatrixMarket matrix coordinate pattern symmetric"));
        let back = from_matrix_market(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn matrix_market_general_symmetry_mirrors_dedup() {
        // A `general` file listing both (i,j) and (j,i) is one edge.
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % comment\n3 3 2\n1 2\n2 1\n";
        let g = from_matrix_market(text).unwrap();
        assert_eq!((g.n(), g.m()), (3, 1));
    }

    #[test]
    fn matrix_market_real_field_values_ignored() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 1\n2 1 3.5\n";
        let g = from_matrix_market(text).unwrap();
        assert_eq!((g.n(), g.m()), (2, 1));
    }

    #[test]
    fn matrix_market_errors_carry_line_numbers() {
        // Malformed banner.
        let e = from_matrix_market("%%MatrixMarket array real general\n2 2 1\n").unwrap_err();
        assert!(e.contains("line 1"), "{e}");
        // Non-square dims.
        let e =
            from_matrix_market("%%MatrixMarket matrix coordinate pattern symmetric\n2 3 1\n1 2\n")
                .unwrap_err();
        assert!(e.contains("line 2") && e.contains("square"), "{e}");
        // Out-of-range endpoint, with its line number.
        let e =
            from_matrix_market("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 3\n")
                .unwrap_err();
        assert!(e.contains("line 3") && e.contains("out of range"), "{e}");
        // 0-based index.
        let e =
            from_matrix_market("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n0 1\n")
                .unwrap_err();
        assert!(e.contains("line 3") && e.contains("1-based"), "{e}");
        // Diagonal entry (self-loop) rejected by the strict parser.
        assert!(from_matrix_market(
            "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 1\n"
        )
        .is_err());
        // Missing dimension line.
        assert!(
            from_matrix_market("%%MatrixMarket matrix coordinate pattern symmetric\n").is_err()
        );
    }

    #[test]
    fn sniff_by_extension_and_content() {
        use std::path::PathBuf;
        let p = |s: &str| PathBuf::from(s);
        assert_eq!(FileFormat::sniff(&p("g.mtx"), ""), FileFormat::MatrixMarket);
        assert_eq!(FileFormat::sniff(&p("g.col"), ""), FileFormat::Dimacs);
        assert_eq!(
            FileFormat::sniff(
                &p("g.txt"),
                "%%MatrixMarket matrix coordinate pattern general\n"
            ),
            FileFormat::MatrixMarket
        );
        assert_eq!(
            FileFormat::sniff(&p("g.txt"), "c road net\np edge 4 2\n"),
            FileFormat::Dimacs
        );
        assert_eq!(
            FileFormat::sniff(&p("g.txt"), "n 4\n0 1\n"),
            FileFormat::EdgeList
        );
    }

    #[test]
    fn normalize_cleans_and_reports() {
        // 6 vertices, a triangle 0-1-2 with junk, an edge 3-4, isolated 5.
        let raw = RawGraph {
            n: 6,
            edges: vec![(0, 1), (1, 0), (1, 2), (0, 2), (2, 2), (3, 4), (0, 1)],
        };
        let (g, rep) = normalize(&raw, NormalizeOptions::default());
        assert_eq!((g.n(), g.m()), (6, 4));
        assert_eq!(rep.self_loops, 1);
        assert_eq!(rep.duplicates, 2);
        assert_eq!(rep.components, 3);
        assert_eq!(rep.arboricity.lower, 2); // the triangle
        let (g, rep) = normalize(
            &raw,
            NormalizeOptions {
                largest_component: true,
            },
        );
        assert_eq!((g.n(), g.m()), (3, 3), "largest component is the triangle");
        assert_eq!(rep.n_raw, 6);
        assert!(g.check_invariants());
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let a = content_hash(b"n 2\n0 1\n");
        assert_eq!(a, content_hash(b"n 2\n0 1\n"));
        assert_ne!(a, content_hash(b"n 2\n1 0\n"));
        // Pinned FNV-1a value so the workload cache key is stable across
        // sessions (results baselines depend on it only via equality, but
        // a silent hash change should still be loud).
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
    }
}

#[cfg(test)]
mod roundtrip_props {
    use super::*;
    use crate::GraphBuilder;
    use proptest::prelude::*;

    /// Arbitrary small simple graph: n ∈ [1, 24], edge set drawn from the
    /// n(n−1)/2 possible pairs.
    fn arb_graph() -> impl Strategy<Value = Graph> {
        (1usize..24).prop_flat_map(|n| {
            let pairs = n * n.saturating_sub(1) / 2;
            proptest::collection::vec(0..pairs.max(1), 0..40).prop_map(move |picks| {
                let mut b = GraphBuilder::new(n);
                for p in picks {
                    // Unrank pair index p into (u, v), u < v.
                    let mut idx = p % pairs.max(1);
                    if pairs == 0 {
                        continue;
                    }
                    let mut u = 0usize;
                    let mut row = n - 1;
                    while idx >= row {
                        idx -= row;
                        u += 1;
                        row -= 1;
                    }
                    let v = u + 1 + idx;
                    b.push(u as VertexId, v as VertexId);
                }
                b.build()
            })
        })
    }

    proptest! {
        // Every format round-trips every small simple graph, and chaining
        // formats (edge-list → DIMACS → Matrix Market) is lossless too.
        #[test]
        fn all_formats_roundtrip(g in arb_graph()) {
            let via_el = from_edge_list(&to_edge_list(&g)).unwrap();
            prop_assert_eq!(&via_el, &g);
            let via_dimacs = from_dimacs(&to_dimacs(&via_el)).unwrap();
            prop_assert_eq!(&via_dimacs, &g);
            let via_mm = from_matrix_market(&to_matrix_market(&via_dimacs)).unwrap();
            prop_assert_eq!(&via_mm, &g);
        }

        // The lenient parsers agree with the strict ones on clean input.
        #[test]
        fn raw_parse_matches_strict_on_clean_input(g in arb_graph()) {
            for (fmt, text) in [
                (FileFormat::EdgeList, to_edge_list(&g)),
                (FileFormat::Dimacs, to_dimacs(&g)),
                (FileFormat::MatrixMarket, to_matrix_market(&g)),
            ] {
                let raw = parse_raw(&text, fmt).unwrap();
                let (norm, rep) = normalize(&raw, NormalizeOptions::default());
                prop_assert_eq!(&norm, &g, "format {}", fmt.label());
                prop_assert_eq!(rep.self_loops, 0);
                prop_assert_eq!(rep.duplicates, 0);
            }
        }

        // Normalization is idempotent: a normalized graph re-normalizes
        // to itself with a clean report.
        #[test]
        fn normalize_idempotent(g in arb_graph()) {
            let raw = RawGraph { n: g.n(), edges: g.edges().map(|(_, e)| e).collect() };
            let (once, _) = normalize(&raw, NormalizeOptions::default());
            let raw2 = RawGraph { n: once.n(), edges: once.edges().map(|(_, e)| e).collect() };
            let (twice, rep) = normalize(&raw2, NormalizeOptions::default());
            prop_assert_eq!(&twice, &once);
            prop_assert_eq!(rep.self_loops + rep.duplicates, 0);
        }
    }
}
