//! Edge-list graph construction.

use crate::csr::{EdgeId, Graph, VertexId};

/// Builds an undirected simple [`Graph`] from an edge list.
///
/// Self-loops are rejected (panic) and parallel edges are deduplicated
/// silently — generators may produce the same edge twice (e.g. overlapping
/// forests in [`crate::gen::forest_union`]) and the union is what's wanted.
///
/// ```
/// use graphcore::GraphBuilder;
/// let g = GraphBuilder::new(3).edges([(0, 1), (1, 2), (1, 0)]).build();
/// assert_eq!(g.m(), 2); // (1,0) deduplicated against (0,1)
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` vertices `0..n`.
    pub fn new(n: usize) -> Self {
        assert!(
            n < u32::MAX as usize,
            "vertex count exceeds u32 index space"
        );
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds a single undirected edge `{u, v}`.
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.push(u, v);
        self
    }

    /// Adds many edges.
    pub fn edges<I: IntoIterator<Item = (VertexId, VertexId)>>(mut self, it: I) -> Self {
        for (u, v) in it {
            self.push(u, v);
        }
        self
    }

    /// In-place edge insertion for loop-heavy generators.
    pub fn push(&mut self, u: VertexId, v: VertexId) {
        assert_ne!(u, v, "self-loop {{{u},{u}}} rejected");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Number of (not yet deduplicated) edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a CSR [`Graph`], deduplicating parallel edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let edges = self.edges;

        // Count degrees.
        let mut degree = vec![0u32; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }

        // Prefix sums -> offsets.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc = acc.checked_add(*d).expect("half-edge count overflows u32");
            offsets.push(acc);
        }

        // Fill adjacency; edges are sorted by (u, v) so each vertex's
        // neighbor list ends up sorted (fill position walks forward).
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0 as VertexId; acc as usize];
        let mut edge_ids = vec![0 as EdgeId; acc as usize];
        // First pass in sorted order places the higher endpoint's list
        // entries also in sorted order because for fixed v the partners u
        // appear in increasing order.
        for (e, &(u, v)) in edges.iter().enumerate() {
            let e = e as EdgeId;
            let cu = cursor[u as usize] as usize;
            neighbors[cu] = v;
            edge_ids[cu] = e;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            neighbors[cv] = u;
            edge_ids[cv] = e;
            cursor[v as usize] += 1;
        }
        // The pass above does NOT leave each list sorted in general
        // (a vertex interleaves roles as lower/higher endpoint), so sort
        // each list by neighbor id, carrying edge ids along.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            let mut pairs: Vec<(VertexId, EdgeId)> = neighbors[lo..hi]
                .iter()
                .copied()
                .zip(edge_ids[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (i, (nb, ei)) in pairs.into_iter().enumerate() {
                neighbors[lo + i] = nb;
                edge_ids[lo + i] = ei;
            }
        }

        Graph::from_parts(offsets, neighbors, edge_ids, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_parallel_edges() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 0), (0, 1), (2, 3)])
            .build();
        assert_eq!(g.m(), 2);
        assert!(g.check_invariants());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        GraphBuilder::new(2).edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        GraphBuilder::new(2).edge(0, 2);
    }

    #[test]
    fn sorted_adjacency_after_interleaved_roles() {
        // Vertex 2 is higher endpoint for (0,2),(1,2) and lower for (2,3),(2,4).
        let g = GraphBuilder::new(5)
            .edges([(2, 4), (0, 2), (2, 3), (1, 2)])
            .build();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
        assert!(g.check_invariants());
    }

    #[test]
    fn edge_ids_are_dense_and_consistent() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 3), (3, 0)])
            .build();
        let mut seen = vec![false; g.m()];
        for (e, (u, v)) in g.edges() {
            assert!(!seen[e as usize]);
            seen[e as usize] = true;
            assert_eq!(g.edge_between(u, v), Some(e));
        }
        assert!(seen.iter().all(|&s| s));
    }
}
