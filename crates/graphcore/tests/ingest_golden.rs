//! Golden ingestion test over the committed `testdata/` fixtures.
//!
//! Pins n, m, the cleaning counters, and the realized arboricity bracket
//! for each file, so a parser or normalization change that alters what a
//! real topology ingests to fails loudly here rather than as a silent
//! workload drift in the suites.

use graphcore::io::{ingest_path, IngestReport, NormalizeOptions};
use std::path::PathBuf;

fn testdata(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../testdata/{file}"))
}

fn ingest(file: &str, largest_component: bool) -> (graphcore::Graph, IngestReport) {
    ingest_path(&testdata(file), NormalizeOptions { largest_component })
        .unwrap_or_else(|e| panic!("{file}: {e}"))
}

#[test]
fn road_excerpt_golden() {
    // 8×8 street grid with a river gap, two bridges, three diagonal
    // connectors, and two duplicated survey rows (edge-list format).
    let (g, rep) = ingest("road_excerpt.txt", false);
    assert_eq!((g.n(), g.m()), (64, 109));
    assert_eq!((rep.n_raw, rep.m_raw), (64, 111));
    assert_eq!((rep.self_loops, rep.duplicates), (0, 2));
    assert_eq!(rep.components, 1);
    assert_eq!((rep.arboricity.lower, rep.arboricity.upper), (2, 2));
    assert_eq!(g.max_degree(), 6);
    assert!(g.check_invariants());
}

#[test]
fn powerlaw_sample_golden() {
    // Preferential-attachment sample with one stray diagonal entry
    // (Matrix Market format): hub-heavy but arboricity 2.
    let (g, rep) = ingest("powerlaw_sample.mtx", false);
    assert_eq!((g.n(), g.m()), (80, 150));
    assert_eq!((rep.self_loops, rep.duplicates), (1, 0));
    assert_eq!(rep.components, 1);
    assert_eq!((rep.arboricity.lower, rep.arboricity.upper), (2, 2));
    assert_eq!(g.max_degree(), 25, "the hub: a ≪ Δ topology");
}

#[test]
fn collab_excerpt_golden() {
    // Overlapping 4-author paper cliques (DIMACS format); the id space
    // is sparse, so most declared vertices are isolated.
    let (g, rep) = ingest("collab_excerpt.col", false);
    assert_eq!((g.n(), g.m()), (40, 51));
    assert_eq!(
        rep.components, 19,
        "one collaboration core + 18 isolated ids"
    );
    assert_eq!((rep.arboricity.lower, rep.arboricity.upper), (3, 3));

    // Largest-component mode compacts away the isolated ids.
    let (g, rep) = ingest("collab_excerpt.col", true);
    assert_eq!((g.n(), g.m()), (22, 51));
    assert_eq!(rep.n_raw, 40, "report still records the raw size");
    assert!(g.check_invariants());
}
