//! Cover-free set families and the Linial color-reduction step.
//!
//! Procedure Arb-Linial-Coloring (§7.2, following Linial \[19\] and Lemma
//! 3.21 of \[4\]) needs, for a current palette of `p` colors and an
//! out-degree bound `A`, a collection `𝒥` of `p` subsets of a small ground
//! set such that **no set is covered by the union of any `A` others**. A
//! vertex colored `x` whose parents are colored `y₁..y_A` can then pick an
//! element of `F_x ∖ (F_{y₁} ∪ … ∪ F_{y_A})` as its new color — distinct
//! from whatever each parent picks from its own set.
//!
//! We use the explicit polynomial construction: with `q` prime and degree
//! bound `d`, the set of the color `x` is `F_x = {(i, f_x(i)) : i ∈ F_q}`
//! where `f_x` is the polynomial whose coefficients are the base-`q` digits
//! of `x`. Distinct polynomials agree on ≤ `d` points, so `|F_x ∩ F_y| ≤ d`
//! and `q > A·d` guarantees the cover-free property. The ground set has
//! `q²` elements — `O(A² log² p / log² A)`, within a `log p / log A` factor
//! of Linial's probabilistic bound, with identical fixpoint behaviour:
//! iterating the reduction reaches `O(A²)` colors in `O(log* p)` steps.

/// Smallest prime ≥ `x` (trial division; fine for the ≤ 10⁷ range used).
pub fn next_prime(x: u64) -> u64 {
    let mut c = x.max(2);
    loop {
        if is_prime(c) {
            return c;
        }
        c += 1;
    }
}

/// Deterministic primality by trial division.
pub fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x.is_multiple_of(2) {
        return x == 2;
    }
    let mut d = 3u64;
    while d.saturating_mul(d) <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Parameters of one polynomial cover-free family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoverFree {
    /// Field size (prime), also the size of every set `F_x`.
    pub q: u64,
    /// Polynomial degree bound; `|F_x ∩ F_y| ≤ d` for `x ≠ y`.
    pub d: u64,
    /// The union bound the family is built for: `q > a_bound · d`.
    pub a_bound: u64,
}

impl CoverFree {
    /// Builds a family able to distinguish `p_colors` distinct current
    /// colors against unions of up to `a_bound` other sets.
    pub fn for_palette(p_colors: u64, a_bound: u64) -> Self {
        let a = a_bound.max(1);
        let p = p_colors.max(2);
        // Need q^(d+1) ≥ p and q > a·d. Try growing d; for each d the
        // minimal q is max(next_prime(a·d + 1), ⌈p^(1/(d+1))⌉ rounded up to
        // prime); pick the d minimizing the ground set q².
        let mut best: Option<CoverFree> = None;
        for d in 1..=64u64 {
            let root = integer_root_ceil(p, (d + 1) as u32);
            let q = next_prime(root.max(a * d + 1));
            // q^(d+1) ≥ p holds by construction of root.
            let cand = CoverFree { q, d, a_bound: a };
            if best.is_none_or(|b| cand.ground_size() < b.ground_size()) {
                best = Some(cand);
            }
            // Once q is driven purely by a·d, increasing d only hurts.
            if root <= a * d + 1 {
                break;
            }
        }
        best.expect("at least one candidate")
    }

    /// Size of the ground set: new colors come from `0..q²`.
    pub fn ground_size(&self) -> u64 {
        self.q * self.q
    }

    /// The set `F_x` as an iterator of ground-set elements `i·q + f_x(i)`.
    pub fn set_of(&self, x: u64) -> impl Iterator<Item = u64> + '_ {
        let coeffs = self.coefficients(x);
        (0..self.q).map(move |i| {
            let mut acc = 0u64;
            // Horner in F_q; q² < 2^63 for our sizes so no overflow.
            for &c in coeffs.iter().rev() {
                acc = (acc * i + c) % self.q;
            }
            i * self.q + acc
        })
    }

    /// Base-`q` digits of `x`, lowest first, padded to `d+1` coefficients.
    fn coefficients(&self, x: u64) -> Vec<u64> {
        let mut v = Vec::with_capacity(self.d as usize + 1);
        let mut x = x;
        for _ in 0..=self.d {
            v.push(x % self.q);
            x /= self.q;
        }
        debug_assert_eq!(x, 0, "color exceeds q^(d+1); family too small");
        v
    }

    /// The Linial step: returns an element of `F_mine` not contained in
    /// any `F_y` for `y ∈ others`. Panics if `others` exceeds the union
    /// bound (caller violated the out-degree invariant) or if the colors
    /// collide with `mine` (caller's current coloring was improper).
    pub fn reduce(&self, mine: u64, others: &[u64]) -> u64 {
        assert!(
            others.len() as u64 <= self.a_bound,
            "{} parents exceed cover-free bound {}",
            others.len(),
            self.a_bound
        );
        let mut blocked: Vec<u64> = Vec::with_capacity(others.len() * self.q as usize);
        for &y in others {
            debug_assert_ne!(y, mine, "parent shares current color {mine}");
            blocked.extend(self.set_of(y));
        }
        blocked.sort_unstable();
        self.set_of(mine)
            .find(|e| blocked.binary_search(e).is_err())
            .expect("cover-free property guarantees an uncovered element")
    }
}

/// `⌈p^(1/k)⌉` by floating point with integer correction.
fn integer_root_ceil(p: u64, k: u32) -> u64 {
    if p <= 1 {
        return 1;
    }
    let mut r = (p as f64).powf(1.0 / k as f64).ceil() as u64;
    // Correct downward/upward around FP error.
    while r > 1 && pow_at_least(r - 1, k, p) {
        r -= 1;
    }
    while !pow_at_least(r, k, p) {
        r += 1;
    }
    r
}

/// Whether `base^k ≥ p`, saturating.
fn pow_at_least(base: u64, k: u32, p: u64) -> bool {
    let mut acc: u64 = 1;
    for _ in 0..k {
        acc = acc.saturating_mul(base);
        if acc >= p {
            return true;
        }
    }
    acc >= p
}

/// The deterministic palette-size sequence of iterated Linial reduction:
/// starting from `p0` colors with union bound `a_bound`, repeatedly apply
/// [`CoverFree::for_palette`] until the palette stops shrinking. Returns
/// the per-step families (empty if `p0` is already at the fixpoint).
///
/// Every vertex computes this same schedule from the globally known
/// `(p0, a_bound)`, so all vertices agree on the number of reduction
/// rounds — the paper's "`O(log* n)` steps".
pub fn reduction_schedule(p0: u64, a_bound: u64) -> Vec<CoverFree> {
    let mut steps = Vec::new();
    let mut p = p0.max(2);
    loop {
        let fam = CoverFree::for_palette(p, a_bound);
        if fam.ground_size() >= p {
            break;
        }
        p = fam.ground_size();
        steps.push(fam);
        assert!(steps.len() <= 64, "reduction schedule failed to converge");
    }
    steps
}

/// Final palette size after the full reduction schedule.
pub fn fixpoint_palette(p0: u64, a_bound: u64) -> u64 {
    reduction_schedule(p0, a_bound)
        .last()
        .map(|f| f.ground_size())
        .unwrap_or(p0.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes() {
        assert!(is_prime(2) && is_prime(3) && is_prime(97));
        assert!(!is_prime(1) && !is_prime(91));
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(2), 2);
    }

    #[test]
    fn integer_root() {
        assert_eq!(integer_root_ceil(1000, 3), 10);
        assert_eq!(integer_root_ceil(1001, 3), 11);
        assert_eq!(integer_root_ceil(1, 5), 1);
        assert_eq!(integer_root_ceil(u64::MAX / 2, 1), u64::MAX / 2);
    }

    #[test]
    fn family_parameters_sound() {
        let f = CoverFree::for_palette(1_000_000, 6);
        assert!(f.q > f.a_bound * f.d);
        assert!(pow_at_least(f.q, f.d as u32 + 1, 1_000_000));
        // Each set has q elements inside 0..q².
        let s: Vec<u64> = f.set_of(999_999).collect();
        assert_eq!(s.len(), f.q as usize);
        assert!(s.iter().all(|&e| e < f.ground_size()));
    }

    #[test]
    fn sets_intersect_in_at_most_d() {
        let f = CoverFree::for_palette(10_000, 4);
        let a: std::collections::HashSet<u64> = f.set_of(123).collect();
        for y in [0u64, 1, 999, 9_999] {
            if y == 123 {
                continue;
            }
            let inter = f.set_of(y).filter(|e| a.contains(e)).count() as u64;
            assert!(
                inter <= f.d,
                "colors 123,{y} intersect in {inter} > d={}",
                f.d
            );
        }
    }

    #[test]
    fn reduce_avoids_all_parents() {
        let f = CoverFree::for_palette(100_000, 5);
        let parents = [17u64, 99_999, 4242, 7, 31_337];
        let c = f.reduce(55_555, &parents);
        assert!(c < f.ground_size());
        // c must differ from every parent's possible choices: verify c is
        // outside each parent's set.
        for &p in &parents {
            assert!(!f.set_of(p).any(|e| e == c));
        }
        // And c is in my own set.
        assert!(f.set_of(55_555).any(|e| e == c));
    }

    #[test]
    fn reduce_distinct_for_adjacent_pair() {
        // Simulate one synchronous step on an edge (u parent of v):
        // v avoids F_u, u picks inside F_u — results differ.
        let f = CoverFree::for_palette(1 << 20, 3);
        let cu = f.reduce(1000, &[2000, 3000]);
        let cv = f.reduce(4000, &[1000]);
        assert_ne!(cu, cv);
    }

    #[test]
    fn schedule_converges_to_a_squared_scale() {
        for a in [2u64, 4, 16] {
            let steps = reduction_schedule(1 << 40, a);
            assert!(!steps.is_empty());
            assert!(steps.len() <= 10, "too many steps: {}", steps.len());
            let fin = fixpoint_palette(1 << 40, a);
            // Fixpoint is O(a²) with a modest constant.
            assert!(
                fin <= 200 * (a + 1) * (a + 1),
                "fixpoint {fin} too large for a={a}"
            );
            // Palette shrinks monotonically along the schedule.
            let mut prev = 1u64 << 40;
            for f in &steps {
                assert!(f.ground_size() < prev);
                prev = f.ground_size();
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceed cover-free bound")]
    fn reduce_rejects_too_many_parents() {
        let f = CoverFree::for_palette(100, 2);
        f.reduce(1, &[2, 3, 4]);
    }

    #[test]
    fn schedule_steps_scale_like_log_star() {
        let s_small = reduction_schedule(1 << 8, 2).len();
        let s_big = reduction_schedule(1 << 60, 2).len();
        assert!(s_big >= s_small);
        assert!(
            s_big - s_small <= 3,
            "growth {s_small}->{s_big} not log*-like"
        );
    }
}
