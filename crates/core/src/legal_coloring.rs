//! §7.8's Procedure Legal-Coloring (Algorithm 3 of the paper, from \[5\]).
//!
//! Iteratively refines the graph into sparser and sparser vertex-disjoint
//! subgraphs: while the arboricity budget `α` exceeds the parameter `p`,
//! every current subgraph is split by Procedure Arbdefective-Coloring
//! into `p` groups of arboricity ≤ `⌊(3+ε)α/p⌋` each; when `α ≤ p`, every
//! leaf subgraph is colored *legally* with the Arb-Color recipe
//! (Theorem 5.15 of \[4\]) using its own `A+1`-color palette copy — the
//! unique leaf index (the group-choice prefix) keeps the copies disjoint,
//! so the union is a proper coloring of `G` with `p^{levels}·O(p) =
//! O(a^{1+η})` colors for `p = 2^{O(1/η)}`.
//!
//! Our standing substitution applies here as well (DESIGN.md): the inner
//! defective coloring of each `G(H_i)` is replaced by the proper in-set
//! `(A+1)`-coloring, which makes the partial orientation total and only
//! improves the split guarantee.
//!
//! Unlike [`crate::one_plus_eta`] (which embeds a *budgeted* partition of
//! `r = O(log log n)` rounds per level and diverts the remainder), this
//! procedure runs every level's partition to completion — the classical
//! `O(log a · log n)`-worst-case discipline. It is both a faithful
//! rendering of Algorithm 3 and the natural worst-case baseline for the
//! §7.8 row.

use crate::inset::DeltaPlusOneSchedule;
use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition, WireSize};
use std::sync::OnceLock;

/// What a vertex is doing (published with its prefix).
/// Field conventions: `h` is the 1-based H-set index within the current
/// level, `c` a running color value, `local` a final in-set color, `g`
/// a chosen group, `rec` a final leaf color.
#[allow(missing_docs)]
#[derive(Clone, Debug, PartialEq)]
pub enum LcMode {
    /// Refinement level: partitioning the current subgraph.
    Part { h: Option<u32> },
    /// Refinement level: in-set coloring.
    InSet { h: u32, c: u64 },
    /// Refinement level: waiting for parents to pick groups.
    Wait { h: u32, local: u64 },
    /// Picked a group; descends at the next level boundary.
    Picked { h: u32, local: u64, g: u32 },
    /// Leaf: partitioning for the Arb-Color pass.
    LeafPart { h: Option<u32> },
    /// Leaf: in-set coloring.
    LeafInSet { h: u32, c: u64 },
    /// Leaf: recolor wait.
    LeafWait { h: u32, local: u64 },
    /// Terminal with the leaf color `rec`.
    Done { h: u32, local: u64, rec: u64 },
}

/// Published state: prefix of group choices plus the current mode.
#[derive(Clone, Debug, PartialEq)]
pub struct LcState {
    /// Group chosen at each completed refinement level.
    pub prefix: Vec<u32>,
    /// Current activity.
    pub mode: LcMode,
}

impl WireSize for LcMode {
    fn wire_bits(&self) -> u64 {
        // 3-bit tag for eight variants, then the payload.
        match self {
            LcMode::Part { h } | LcMode::LeafPart { h } => 3 + h.wire_bits(),
            LcMode::InSet { h, c } | LcMode::LeafInSet { h, c } => {
                3 + h.wire_bits() + c.wire_bits()
            }
            LcMode::Wait { h, local } | LcMode::LeafWait { h, local } => {
                3 + h.wire_bits() + local.wire_bits()
            }
            LcMode::Picked { h, local, g } => 3 + h.wire_bits() + local.wire_bits() + g.wire_bits(),
            LcMode::Done { h, local, rec } => {
                3 + h.wire_bits() + local.wire_bits() + rec.wire_bits()
            }
        }
    }
}

impl WireSize for LcState {
    fn wire_bits(&self) -> u64 {
        // The group-choice prefix travels with the mode (same-branch
        // filtering needs it), so its heap payload is charged too.
        self.prefix.wire_bits() + self.mode.wire_bits()
    }
}

/// Deterministic per-level timetable.
#[derive(Clone, Debug)]
struct LcSchedule {
    /// Arboricity budget and degree threshold per refinement level.
    levels: Vec<(usize, usize)>,
    /// Level start rounds (levels.len() + 1 entries; last = leaf start).
    starts: Vec<u32>,
    /// Full-partition bound `L(n, ε)`.
    full: u32,
    /// Leaf arboricity budget (≤ p) and threshold.
    leaf_cap: usize,
    /// In-set schedules per level and for the leaf pass.
    insets: Vec<DeltaPlusOneSchedule>,
    leaf_inset: DeltaPlusOneSchedule,
}

/// Procedure Legal-Coloring.
#[derive(Debug)]
pub struct LegalColoring {
    /// Known arboricity.
    pub arboricity: usize,
    /// The refinement parameter `p` (≥ 6 so the budget shrinks with ε=2).
    pub p: u32,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    sched: OnceLock<LcSchedule>,
}

impl LegalColoring {
    /// Instance with ε = 2.
    pub fn new(arboricity: usize, p: u32) -> Self {
        assert!(p >= 6, "p must exceed 3+ε = 5 for the budget to shrink");
        LegalColoring {
            arboricity,
            p,
            epsilon: 2.0,
            sched: OnceLock::new(),
        }
    }

    fn schedule(&self, n: u64, ids: &IdAssignment) -> &LcSchedule {
        self.sched.get_or_init(|| {
            let ids_space = ids.id_space().max(2);
            let full = itlog::partition_round_bound(n, self.epsilon);
            let mut levels = Vec::new();
            let mut insets = Vec::new();
            let mut starts = vec![1u32];
            let mut alpha = self.arboricity.max(1);
            while alpha > self.p as usize {
                let cap = degree_cap(alpha, self.epsilon);
                let inset = DeltaPlusOneSchedule::new(ids_space, cap as u64);
                let dur = full + inset.rounds() + (cap as u32 + 1) * (full + 1) + 4;
                levels.push((alpha, cap));
                insets.push(inset);
                starts.push(starts.last().unwrap() + dur);
                // α ← ⌊(3+ε)·α/p⌋, clamped ≥ 1 (the paper's line 15 with
                // the defect term dropped by our 0-defect substitution).
                alpha = (((3.0 + self.epsilon) * alpha as f64) / self.p as f64).floor() as usize;
                alpha = alpha.max(1);
            }
            let leaf_cap = degree_cap(alpha, self.epsilon);
            let leaf_inset = DeltaPlusOneSchedule::new(ids_space, leaf_cap as u64);
            LcSchedule {
                levels,
                starts,
                full,
                leaf_cap,
                insets,
                leaf_inset,
            }
        })
    }

    /// Injective encoding of (prefix, leaf color).
    pub fn encode(&self, prefix: &[u32], rec: u64) -> u64 {
        let mut enc: u64 = 1;
        for &g in prefix {
            enc = enc * (self.p as u64 + 1) + (g as u64 + 1);
        }
        enc * (1 << 16) + rec
    }

    /// Loose palette bound for verification: distinct encodings possible.
    /// The prefix part of [`LegalColoring::encode`] is bounded by
    /// `(p+1)^(depth+1)` and the leaf color occupies the low 16 bits; the
    /// bound is deliberately loose — tests count used colors.
    pub fn palette_bound(&self, n: u64, ids: &IdAssignment) -> u64 {
        let depth = self.schedule(n, ids).levels.len() as u32;
        (self.p as u64 + 1).pow(depth + 1) * (1 << 16)
    }

    fn same_branch(my_prefix: &[u32], other: &LcState) -> bool {
        my_prefix == other.prefix.as_slice()
    }
}

impl Protocol for LegalColoring {
    type State = LcState;
    type Msg = LcState;
    type Output = u64;

    fn init(&self, g: &Graph, ids: &IdAssignment, _: VertexId) -> LcState {
        let s = self.schedule(g.n() as u64, ids);
        let mode = if s.levels.is_empty() {
            LcMode::LeafPart { h: None }
        } else {
            LcMode::Part { h: None }
        };
        LcState {
            prefix: Vec::new(),
            mode,
        }
    }

    fn publish(&self, state: &LcState) -> LcState {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, LcState>) -> Transition<LcState, u64> {
        let n = ctx.graph.n() as u64;
        let s = self.schedule(n, ctx.ids);
        let st = ctx.state.clone();
        let lev = st.prefix.len();
        let round = ctx.round;
        match st.mode {
            LcMode::Part { h: None } => {
                let cap = s.levels[lev].1;
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, o)| {
                        Self::same_branch(&st.prefix, o)
                            && matches!(o.mode, LcMode::Part { h: None })
                    })
                    .count();
                let mode = if partition_step(active, cap) {
                    LcMode::Part {
                        h: Some(round - s.starts[lev] + 1),
                    }
                } else {
                    LcMode::Part { h: None }
                };
                Transition::Continue(LcState {
                    prefix: st.prefix,
                    mode,
                })
            }
            LcMode::Part { h: Some(h) } => {
                let cstart = s.starts[lev] + s.full + 1;
                if round < cstart {
                    return Transition::Continue(st);
                }
                self.level_inset(&ctx, s, st.prefix, h, ctx.my_id(), round - cstart)
            }
            LcMode::InSet { h, c } => {
                let cstart = s.starts[lev] + s.full + 1;
                self.level_inset(&ctx, s, st.prefix, h, c, round - cstart)
            }
            LcMode::Wait { h, local } => {
                // Backward group-pick cascade over the whole level.
                let mut counts = vec![0u32; self.p as usize];
                for (_, o) in ctx.view.neighbors() {
                    if !Self::same_branch(&st.prefix, o) {
                        continue;
                    }
                    match &o.mode {
                        LcMode::Part { .. } | LcMode::InSet { .. } => {
                            return Transition::Continue(st)
                        }
                        LcMode::Wait { h: j, local: l2 }
                            if (*j > h || (*j == h && *l2 > local)) =>
                        {
                            return Transition::Continue(st);
                        }
                        LcMode::Picked { h: j, local: l2, g }
                            if (*j > h || (*j == h && *l2 > local)) =>
                        {
                            counts[*g as usize] += 1;
                        }
                        _ => {}
                    }
                }
                let g = counts
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, c)| *c)
                    .map(|(i, _)| i as u32)
                    .expect("p ≥ 1 groups");
                Transition::Continue(LcState {
                    prefix: st.prefix,
                    mode: LcMode::Picked { h, local, g },
                })
            }
            LcMode::Picked { h, local, g } => {
                if round < s.starts[lev + 1] {
                    return Transition::Continue(LcState {
                        prefix: st.prefix,
                        mode: LcMode::Picked { h, local, g },
                    });
                }
                let mut prefix = st.prefix;
                prefix.push(g);
                let mode = if prefix.len() < s.levels.len() {
                    LcMode::Part { h: None }
                } else {
                    LcMode::LeafPart { h: None }
                };
                Transition::Continue(LcState { prefix, mode })
            }
            LcMode::LeafPart { h: None } => {
                let leaf_start = *s.starts.last().unwrap();
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, o)| {
                        Self::same_branch(&st.prefix, o)
                            && matches!(o.mode, LcMode::LeafPart { h: None })
                    })
                    .count();
                let mode = if partition_step(active, s.leaf_cap) {
                    LcMode::LeafPart {
                        h: Some(round - leaf_start + 1),
                    }
                } else {
                    LcMode::LeafPart { h: None }
                };
                Transition::Continue(LcState {
                    prefix: st.prefix,
                    mode,
                })
            }
            LcMode::LeafPart { h: Some(h) } => {
                let cstart = s.starts.last().unwrap() + s.full + 1;
                if round < cstart {
                    return Transition::Continue(st);
                }
                self.leaf_inset(&ctx, s, st.prefix, h, ctx.my_id(), round - cstart)
            }
            LcMode::LeafInSet { h, c } => {
                let cstart = s.starts.last().unwrap() + s.full + 1;
                self.leaf_inset(&ctx, s, st.prefix, h, c, round - cstart)
            }
            LcMode::LeafWait { h, local } => {
                // Arb-Color recolor within the leaf.
                let mut used = vec![false; s.leaf_cap + 1];
                for (_, o) in ctx.view.neighbors() {
                    if !Self::same_branch(&st.prefix, o) {
                        continue;
                    }
                    match &o.mode {
                        LcMode::LeafPart { .. } | LcMode::LeafInSet { .. } => {
                            return Transition::Continue(st)
                        }
                        LcMode::LeafWait { h: j, local: l2 }
                            if (*j > h || (*j == h && *l2 > local)) =>
                        {
                            return Transition::Continue(st);
                        }
                        LcMode::Done {
                            h: j,
                            local: l2,
                            rec,
                        } if (*j > h || (*j == h && *l2 > local)) => {
                            used[*rec as usize] = true;
                        }
                        _ => {}
                    }
                }
                let rec = used
                    .iter()
                    .position(|&u| !u)
                    .expect("A+1 palette vs ≤ A parents") as u64;
                let value = self.encode(&st.prefix, rec);
                Transition::Terminate(
                    LcState {
                        prefix: st.prefix,
                        mode: LcMode::Done { h, local, rec },
                    },
                    value,
                )
            }
            LcMode::Done { .. } => unreachable!("terminal"),
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let n = g.n() as u64;
        let ids = IdAssignment::identity(g.n().max(1));
        let s = self.schedule(n, &ids);
        let leaf_tail =
            s.full + s.leaf_inset.rounds() + (s.leaf_cap as u32 + 1) * (s.full + 1) + 32;
        s.starts.last().unwrap() + leaf_tail
    }
}

impl LegalColoring {
    fn level_inset(
        &self,
        ctx: &StepCtx<'_, LcState>,
        s: &LcSchedule,
        prefix: Vec<u32>,
        h: u32,
        cur: u64,
        i: u32,
    ) -> Transition<LcState, u64> {
        let lev = prefix.len();
        let inset = &s.insets[lev];
        let d = inset.rounds();
        if i >= d {
            return Transition::Continue(LcState {
                prefix,
                mode: LcMode::Wait {
                    h,
                    local: inset.finish(cur),
                },
            });
        }
        let peers: Vec<u64> = ctx
            .view
            .neighbors()
            .filter_map(|(u, o)| {
                if !Self::same_branch(&prefix, o) {
                    return None;
                }
                match &o.mode {
                    LcMode::InSet { h: j, c } if *j == h => Some(*c),
                    LcMode::Part { h: Some(j) } if *j == h => Some(ctx.ids.id(u)),
                    _ => None,
                }
            })
            .collect();
        let next = inset.step(i, cur, &peers);
        let mode = if i + 1 == d {
            LcMode::Wait {
                h,
                local: inset.finish(next),
            }
        } else {
            LcMode::InSet { h, c: next }
        };
        Transition::Continue(LcState { prefix, mode })
    }

    fn leaf_inset(
        &self,
        ctx: &StepCtx<'_, LcState>,
        s: &LcSchedule,
        prefix: Vec<u32>,
        h: u32,
        cur: u64,
        i: u32,
    ) -> Transition<LcState, u64> {
        let inset = &s.leaf_inset;
        let d = inset.rounds();
        if i >= d {
            return Transition::Continue(LcState {
                prefix,
                mode: LcMode::LeafWait {
                    h,
                    local: inset.finish(cur),
                },
            });
        }
        let peers: Vec<u64> = ctx
            .view
            .neighbors()
            .filter_map(|(u, o)| {
                if !Self::same_branch(&prefix, o) {
                    return None;
                }
                match &o.mode {
                    LcMode::LeafInSet { h: j, c } if *j == h => Some(*c),
                    LcMode::LeafPart { h: Some(j) } if *j == h => Some(ctx.ids.id(u)),
                    _ => None,
                }
            })
            .collect();
        let next = inset.step(i, cur, &peers);
        let mode = if i + 1 == d {
            LcMode::LeafWait {
                h,
                local: inset.finish(next),
            }
        } else {
            LcMode::LeafInSet { h, c: next }
        };
        Transition::Continue(LcState { prefix, mode })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_and_verify(g: &Graph, a: usize, p: u32) -> usize {
        let pr = LegalColoring::new(a, p);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&pr, g, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(g, &out.outputs, usize::MAX));
        out.metrics.check_identities().unwrap();
        verify::count_distinct(&out.outputs)
    }

    #[test]
    fn leaf_only_when_a_below_p() {
        run_and_verify(&gen::path(100), 1, 6);
        run_and_verify(&gen::grid(9, 10), 2, 6);
    }

    #[test]
    fn one_refinement_level() {
        let mut rng = ChaCha8Rng::seed_from_u64(500);
        let gg = gen::forest_union(500, 8, &mut rng);
        run_and_verify(&gg.graph, 8, 6);
    }

    #[test]
    fn two_refinement_levels() {
        let mut rng = ChaCha8Rng::seed_from_u64(501);
        let gg = gen::forest_union(600, 10, &mut rng);
        // α: 10 → ⌊50/6⌋ = 8 → ⌊40/6⌋ = 6 ≤ p: two levels.
        run_and_verify(&gg.graph, 10, 6);
    }

    #[test]
    fn larger_p_fewer_colors_per_exponent() {
        let mut rng = ChaCha8Rng::seed_from_u64(502);
        let gg = gen::forest_union(700, 12, &mut rng);
        let c6 = run_and_verify(&gg.graph, 12, 6);
        let c12 = run_and_verify(&gg.graph, 12, 12);
        // p = 12 skips refinement entirely (α = 12 ≤ p): pure Arb-Color,
        // minimal colors. p = 6 refines once and pays palette copies.
        assert!(c12 <= c6, "p=12 used {c12} vs p=6 used {c6}");
    }

    #[test]
    fn matches_one_plus_eta_color_scale() {
        // Same input: Legal-Coloring (classical) and One-Plus-Eta
        // (vertex-averaged) both land in the O(a^{1+η}) color regime.
        let mut rng = ChaCha8Rng::seed_from_u64(503);
        let gg = gen::forest_union(800, 8, &mut rng);
        let legal = run_and_verify(&gg.graph, 8, 6);
        let ids = IdAssignment::identity(800);
        let ope = crate::one_plus_eta::OnePlusEtaArbCol::new(8, 4);
        let out = simlocal::Runner::new(&ope, &gg.graph, &ids).run().unwrap();
        let ope_colors = verify::count_distinct(&out.outputs);
        assert!(
            legal < 400 && ope_colors < 400,
            "legal={legal} ope={ope_colors}"
        );
    }
}
