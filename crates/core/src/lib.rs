#![warn(missing_docs)]

//! # algos — the paper's algorithms and their baselines
//!
//! Distributed protocols (over [`simlocal`]) implementing every algorithm
//! of Barenboim & Tzur, *"Distributed Symmetry-Breaking with Improved
//! Vertex-Averaged Complexity"* (SPAA 2018), plus the classical worst-case
//! algorithms the paper's Tables 1–2 compare against.
//!
//! Layering (bottom to top):
//!
//! * [`itlog`] — `log*`, iterated logs, `ρ(n)`, partition round bounds;
//! * [`coverfree`] — polynomial cover-free families + the Linial reduction
//!   step, the combinatorial core of Procedure Arb-Linial-Coloring;
//! * [`partition`] — Procedure Partition (§6.1), `O(1)` vertex-averaged;
//! * [`forests`] — Procedure Parallelized-Forest-Decomposition (§7.1) and
//!   the worst-case Procedure Forest-Decomposition baseline;
//! * [`inset`] — shared in-H-set subroutines: iterated Linial and
//!   Kuhn–Wattenhofer color reduction under a degree cap;
//! * [`coloring`] — the vertex-coloring suite of §7 (Theorems 7.2–7.16)
//!   and the Δ+1 coloring of Corollary 8.3;
//! * [`arb_color`] — the `O(a)`-coloring worst-case baseline (\[8\],
//!   Thm 5.15 of \[4\]), also the residual subroutine of §7.8;
//! * [`one_plus_eta`] — Procedure One-Plus-Eta-Arb-Col (§7.8);
//! * [`extension`] — the extension-from-partial-solution framework (§8);
//! * [`mis`], [`matching`], [`edge_coloring`] — Corollaries 8.4–8.9 and
//!   their classical baselines (Luby, Panconesi–Rizzi);
//! * [`rand_coloring`] — the randomized algorithms of §9;
//! * [`baselines`] — worst-case reference algorithms for the "previous
//!   running time" columns.

pub mod arb_color;
pub mod arbdefective;
pub mod baselines;
pub mod coloring;
pub mod compose;
pub mod coverfree;
pub mod edge_coloring;
pub mod extension;
pub mod forests;
pub mod inset;
pub mod itlog;
pub mod legal_coloring;
pub mod matching;
pub mod mis;
pub mod one_plus_eta;
pub mod partition;
pub mod pipeline;
pub mod rand_coloring;
pub mod rings;
pub mod segmentation;

pub use partition::Partition;
