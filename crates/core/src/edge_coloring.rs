//! Corollary 8.6 — deterministic `(2Δ−1)`-edge-coloring in `O(poly(a) +
//! log* n)` vertex-averaged rounds (output-commit definition; see
//! [`crate::extension`]).
//!
//! Extension-framework instantiation. Inside the window of H-set `H_i`:
//!
//! * **𝒜 (in-set edges).** An in-set `(A+1)`-vertex-coloring provides a
//!   conflict-free schedule; then, per forest label `f` and vertex color
//!   `ĉ`, every vertex with in-set color `ĉ` assigns colors to the edges
//!   of its forest-`f` *children* (in-set neighbors whose label-`f`
//!   out-edge points at it). Within a sub-slot the assigned edges form
//!   disjoint stars around non-adjacent centers, so simultaneous picks
//!   never collide; each sub-slot takes two rounds (assign + relay) so
//!   the endpoint tables neighbors consult are always current.
//! * **ℬ (edges to earlier sets).** Cross edges are grouped by the label
//!   the *earlier* endpoint gave them; an earlier endpoint has at most one
//!   label-`j` out-edge in total, so in sub-slot `j` each earlier vertex
//!   has at most one incident edge being colored and no conflicts arise.
//!
//! Every choice avoids the published incident-color tables of both
//! endpoints (≤ `2Δ−2` blocked colors), so the `2Δ−1` palette always has
//! a free color — the extension property of edge coloring. A vertex
//! *commits* its output at the end of its window; it then keeps relaying
//! its table (adopting colors that later neighbors give its remaining
//! cross edges) until all incident edges are colored, and terminates.

use crate::extension::{metrics_from_commits, IterationSchedule};
use crate::forests::decide_out_edges;
use crate::inset::DeltaPlusOneSchedule;
use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{EdgeId, Graph, IdAssignment, VertexId};
use simlocal::{Protocol, RoundMetrics, SimOutcome, StepCtx, Transition, WireSize};
use std::sync::OnceLock;

/// Working data carried by a vertex from H-set membership to termination.
#[derive(Clone, Debug)]
pub struct EcCore {
    /// H-set index.
    pub h: u32,
    /// My out-edges `(neighbor, forest label)`, fixed one round after
    /// joining.
    pub out_labels: Vec<(VertexId, u32)>,
    /// Current in-set coloring value (ID until the window's coloring part
    /// completes, then the final slot color).
    pub c: u64,
    /// Colors of incident edges this vertex knows, `(neighbor, color)`.
    pub table: Vec<(VertexId, u64)>,
    /// Entries of `table` this vertex assigned itself (its output share).
    pub assigned: Vec<(VertexId, u64)>,
    /// Round in which the output was committed (end of the window).
    pub committed: Option<u32>,
}

impl EcCore {
    fn knows(&self, u: VertexId) -> bool {
        self.table.iter().any(|&(w, _)| w == u)
    }
}

/// The neighbor-visible slice of [`EcCore`]: the `assigned` output share
/// and the commit round are private — neighbors consult only the
/// incident-color `table` (and the labels/coloring that schedule it).
#[derive(Clone, Debug)]
#[allow(missing_docs)] // field meanings mirror `EcCore`
pub struct EcWire {
    pub h: u32,
    pub out_labels: Vec<(VertexId, u32)>,
    pub c: u64,
    pub table: Vec<(VertexId, u64)>,
}

impl EcWire {
    fn label_to(&self, u: VertexId) -> Option<u32> {
        self.out_labels
            .iter()
            .find(|&&(w, _)| w == u)
            .map(|&(_, l)| l)
    }
}

/// Wire message for [`EdgeColoringExtension`].
#[derive(Clone, Debug)]
#[allow(missing_docs)] // mirrors the `SEc` conventions below
pub enum EcMsg {
    Active,
    Joined { h: u32 },
    Run(EcWire),
}

impl WireSize for EcMsg {
    fn wire_bits(&self) -> u64 {
        // 2-bit tag for three variants, then the payload.
        match self {
            EcMsg::Active => 2,
            EcMsg::Joined { h } => 2 + h.wire_bits(),
            EcMsg::Run(w) => {
                2 + w.h.wire_bits()
                    + w.out_labels.wire_bits()
                    + w.c.wire_bits()
                    + w.table.wire_bits()
            }
        }
    }
}

/// Per-vertex state.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum SEc {
    /// Running Procedure Partition.
    Active,
    /// Joined H-set `h`; labels are decided next round.
    Joined { h: u32 },
    /// Labeled and working (before, during, or after the window).
    Run(EcCore),
}

/// Per-vertex output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcOut {
    /// Round in which this vertex's output was committed.
    pub commit_round: u32,
    /// Edge colors this vertex assigned, as `(neighbor, color)`.
    pub assigned: Vec<(VertexId, u64)>,
}

/// The Corollary 8.6 protocol.
#[derive(Debug)]
pub struct EdgeColoringExtension {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    sched: OnceLock<(DeltaPlusOneSchedule, IterationSchedule)>,
}

impl EdgeColoringExtension {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize) -> Self {
        EdgeColoringExtension {
            arboricity,
            epsilon: 2.0,
            sched: OnceLock::new(),
        }
    }

    /// Degree threshold `A`.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    /// Edge palette `2Δ − 1`.
    pub fn palette(g: &Graph) -> u64 {
        (2 * g.max_degree()).saturating_sub(1).max(1) as u64
    }

    fn schedules(&self, ids: &IdAssignment) -> &(DeltaPlusOneSchedule, IterationSchedule) {
        self.sched.get_or_init(|| {
            let inset = DeltaPlusOneSchedule::new(ids.id_space().max(2), self.cap() as u64);
            let cap = self.cap() as u32;
            // d coloring rounds + 2 rounds per in-set sub-slot (label ×
            // color) + 2 per ℬ sub-slot (label).
            let dur = inset.rounds() + 2 * cap * (cap + 1) + 2 * cap;
            (inset, IterationSchedule::new(dur))
        })
    }
}

impl Protocol for EdgeColoringExtension {
    type State = SEc;
    type Msg = EcMsg;
    type Output = EcOut;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> SEc {
        SEc::Active
    }

    fn publish(&self, state: &SEc) -> EcMsg {
        match state {
            SEc::Active => EcMsg::Active,
            SEc::Joined { h } => EcMsg::Joined { h: *h },
            SEc::Run(core) => EcMsg::Run(EcWire {
                h: core.h,
                out_labels: core.out_labels.clone(),
                c: core.c,
                table: core.table.clone(),
            }),
        }
    }

    fn step(&self, ctx: StepCtx<'_, SEc, EcMsg>) -> Transition<SEc, EcOut> {
        match ctx.state.clone() {
            SEc::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, EcMsg::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(SEc::Joined { h: ctx.round })
                } else {
                    Transition::Continue(SEc::Active)
                }
            }
            SEc::Joined { h } => {
                let out_labels = decide_out_edges(&ctx, h, |s| match s {
                    EcMsg::Active => None,
                    EcMsg::Joined { h } => Some(*h),
                    EcMsg::Run(core) => Some(core.h),
                });
                Transition::Continue(SEc::Run(EcCore {
                    h,
                    out_labels,
                    c: ctx.my_id(),
                    table: Vec::new(),
                    assigned: Vec::new(),
                    committed: None,
                }))
            }
            SEc::Run(mut core) => {
                // Always adopt colors that neighbors assigned to my edges.
                self.adopt(&ctx, &mut core);
                if core.committed.is_some() {
                    return self.relay_or_finish(&ctx, core);
                }
                let (inset, iters) = self.schedules(ctx.ids);
                let d = inset.rounds();
                let cap = self.cap() as u32;
                let Some(local) = iters.local_round(core.h, ctx.round) else {
                    return Transition::Continue(SEc::Run(core));
                };
                if local < d {
                    // In-set vertex coloring.
                    let h = core.h;
                    let peers: Vec<u64> = ctx
                        .view
                        .neighbors()
                        .filter_map(|(u, s)| match s {
                            EcMsg::Run(c2) if c2.h == h => Some(c2.c),
                            EcMsg::Joined { h: j } if *j == h => Some(ctx.ids.id(u)),
                            _ => None,
                        })
                        .collect();
                    core.c = inset.step(local, core.c, &peers);
                    if local + 1 == d {
                        core.c = inset.finish(core.c);
                    }
                    return Transition::Continue(SEc::Run(core));
                }
                if d == 0 && local == 0 {
                    // Degenerate tiny instance: ID already < A+1.
                    core.c = inset.finish(core.c);
                }
                let t = local - d;
                let sa = 2 * cap * (cap + 1);
                if t < sa {
                    if t % 2 == 0 {
                        let sub = t / 2;
                        let (f, chat) = (sub / (cap + 1), (sub % (cap + 1)) as u64);
                        if core.c == chat {
                            self.assign_in_set_children(&ctx, &mut core, f);
                        }
                    }
                    return Transition::Continue(SEc::Run(core));
                }
                let t = t - sa;
                if t < 2 * cap {
                    if t.is_multiple_of(2) {
                        self.assign_cross_from_earlier(&ctx, &mut core, t / 2);
                    }
                    return Transition::Continue(SEc::Run(core));
                }
                // Window over: commit, then relay until complete.
                core.committed = Some(ctx.round);
                self.relay_or_finish(&ctx, core)
            }
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let n = g.n() as u64;
        let inset = DeltaPlusOneSchedule::new(n.max(2), self.cap() as u64);
        let cap = self.cap() as u32;
        let dur = inset.rounds() + 2 * cap * (cap + 1) + 2 * cap;
        IterationSchedule::new(dur).window_end(itlog::partition_round_bound(n, self.epsilon)) + 16
    }

    fn phase_names(&self) -> &'static [&'static str] {
        &["partition", "label", "window"]
    }

    fn phase_of(&self, state: &SEc) -> simlocal::PhaseId {
        match state {
            SEc::Active => 0,
            SEc::Joined { .. } => 1,
            SEc::Run(_) => 2,
        }
    }
}

impl EdgeColoringExtension {
    /// Adopts colors neighbors assigned to edges incident on me.
    fn adopt(&self, ctx: &StepCtx<'_, SEc, EcMsg>, core: &mut EcCore) {
        let me = ctx.v;
        for (u, s) in ctx.view.neighbors() {
            if core.knows(u) {
                continue;
            }
            if let EcMsg::Run(other) = s {
                if let Some(&(_, color)) = other.table.iter().find(|&&(w, _)| w == me) {
                    core.table.push((u, color));
                }
            }
        }
    }

    /// Sub-slot (f, ĉ): assign distinct free colors to my forest-`f`
    /// child edges (in-set neighbors whose label-`f` out-edge names me).
    fn assign_in_set_children(&self, ctx: &StepCtx<'_, SEc, EcMsg>, core: &mut EcCore, f: u32) {
        let me = ctx.v;
        let palette = Self::palette(ctx.graph);
        for (u, s) in ctx.view.neighbors() {
            let EcMsg::Run(child) = s else { continue };
            if child.h != core.h || child.label_to(me) != Some(f) || core.knows(u) {
                continue;
            }
            let mut blocked: Vec<u64> = core.table.iter().map(|&(_, c)| c).collect();
            blocked.extend(child.table.iter().map(|&(_, c)| c));
            let color = (0..palette)
                .find(|c| !blocked.contains(c))
                .expect("2Δ−1 palette vs ≤ 2Δ−2 blocked colors");
            core.table.push((u, color));
            core.assigned.push((u, color));
        }
    }

    /// ℬ sub-slot `j`: color cross edges from earlier sets whose earlier
    /// endpoint labeled them `j`.
    fn assign_cross_from_earlier(&self, ctx: &StepCtx<'_, SEc, EcMsg>, core: &mut EcCore, j: u32) {
        let me = ctx.v;
        let palette = Self::palette(ctx.graph);
        for (u, s) in ctx.view.neighbors() {
            let EcMsg::Run(earlier) = s else { continue };
            if earlier.h >= core.h || earlier.label_to(me) != Some(j) || core.knows(u) {
                continue;
            }
            let mut blocked: Vec<u64> = core.table.iter().map(|&(_, c)| c).collect();
            blocked.extend(earlier.table.iter().map(|&(_, c)| c));
            let color = (0..palette)
                .find(|c| !blocked.contains(c))
                .expect("2Δ−1 palette vs ≤ 2Δ−2 blocked colors");
            core.table.push((u, color));
            core.assigned.push((u, color));
        }
    }

    /// After committing: relay until every incident edge is colored.
    fn relay_or_finish(
        &self,
        ctx: &StepCtx<'_, SEc, EcMsg>,
        core: EcCore,
    ) -> Transition<SEc, EcOut> {
        if core.table.len() == ctx.degree() {
            let out = EcOut {
                commit_round: core.committed.expect("committed before finishing"),
                assigned: core.assigned.clone(),
            };
            Transition::Terminate(SEc::Run(core), out)
        } else {
            Transition::Continue(SEc::Run(core))
        }
    }
}

/// Assembles per-vertex outputs into a per-edge color array and the
/// commit-round metrics. Errors if an edge is colored twice or never.
pub fn assemble(g: &Graph, out: &SimOutcome<EcOut>) -> Result<(Vec<u64>, RoundMetrics), String> {
    let mut colors = vec![u64::MAX; g.m()];
    let mut owner: Vec<Option<VertexId>> = vec![None; g.m()];
    for v in g.vertices() {
        for &(u, c) in &out.outputs[v as usize].assigned {
            let e: EdgeId = g
                .edge_between(v, u)
                .ok_or_else(|| format!("vertex {v} colored non-edge ({v},{u})"))?;
            if let Some(o) = owner[e as usize] {
                return Err(format!("edge {e} colored by both {o} and {v}"));
            }
            owner[e as usize] = Some(v);
            colors[e as usize] = c;
        }
    }
    for (e, _) in g.edges() {
        if owner[e as usize].is_none() {
            return Err(format!("edge {e} never colored"));
        }
    }
    let commits: Vec<u32> = out.outputs.iter().map(|o| o.commit_round).collect();
    Ok((colors, metrics_from_commits(&commits)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_and_verify(g: &Graph, a: usize) -> (f64, u32, f64) {
        let p = EdgeColoringExtension::new(a);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).run().unwrap();
        let (colors, commit_metrics) = assemble(g, &out).unwrap();
        verify::assert_ok(verify::proper_edge_coloring(
            g,
            &colors,
            EdgeColoringExtension::palette(g) as usize,
        ));
        commit_metrics.check_identities().unwrap();
        (
            commit_metrics.vertex_averaged(),
            commit_metrics.worst_case(),
            out.metrics.vertex_averaged(),
        )
    }

    #[test]
    fn proper_on_small_families() {
        run_and_verify(&gen::path(60), 1);
        run_and_verify(&gen::cycle(61), 2);
        run_and_verify(&gen::star(25), 1);
        run_and_verify(&gen::grid(7, 9), 2);
    }

    #[test]
    fn proper_on_forest_unions_and_hubs() {
        let mut rng = ChaCha8Rng::seed_from_u64(110);
        for a in [2usize, 3] {
            let gg = gen::forest_union(400, a, &mut rng);
            run_and_verify(&gg.graph, a);
        }
        let hub = gen::hub_forest(800, 1, 3, 40, &mut rng);
        run_and_verify(&hub.graph, hub.arboricity);
    }

    #[test]
    fn commit_va_flat_in_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(111);
        let g1 = gen::forest_union(512, 2, &mut rng);
        let g2 = gen::forest_union(8192, 2, &mut rng);
        let (va1, _, _) = run_and_verify(&g1.graph, 2);
        let (va2, _, _) = run_and_verify(&g2.graph, 2);
        assert!(
            va2 <= va1 * 1.6 + 3.0,
            "commit VA grew too fast: {va1} -> {va2}"
        );
    }

    #[test]
    fn star_uses_delta_colors() {
        // K_{1,n}: Δ = n−1 edges all share the center: exactly Δ colors.
        let g = gen::star(12);
        let p = EdgeColoringExtension::new(1);
        let ids = IdAssignment::identity(12);
        let out = simlocal::Runner::new(&p, &g, &ids).run().unwrap();
        let (colors, _) = assemble(&g, &out).unwrap();
        let distinct = verify::count_distinct(&colors);
        assert_eq!(distinct, 11);
    }

    #[test]
    fn relay_tail_exceeds_commit_rounds() {
        // Engine termination (with relays) is later than commit rounds,
        // never earlier.
        let mut rng = ChaCha8Rng::seed_from_u64(112);
        let gg = gen::forest_union(400, 2, &mut rng);
        let p = EdgeColoringExtension::new(2);
        let ids = IdAssignment::identity(400);
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        let (_, commit_metrics) = assemble(&gg.graph, &out).unwrap();
        for v in gg.graph.vertices() {
            assert!(
                out.metrics.termination_round[v as usize]
                    >= commit_metrics.termination_round[v as usize]
            );
        }
    }
}
