//! Corollary 8.8 — maximal matching in `O(poly(a) + log* n)`
//! vertex-averaged rounds (output-commit definition; see
//! [`crate::extension`]), plus an assembler and validity checks.
//!
//! Extension-framework instantiation. Inside the window of `H_i`:
//!
//! * **𝒜 (in-set edges).** The in-set `(A+1)`-vertex-coloring sequences
//!   the set; per forest label `f` and color `ĉ`, each *unmatched* vertex
//!   with color `ĉ` picks one unmatched forest-`f` child and matches it.
//!   Within a sub-slot the pickers are pairwise non-adjacent and each
//!   target has a unique forest-`f` parent, so picks never collide; the
//!   two-round cadence (pick + relay) keeps published matched-flags
//!   current.
//! * **ℬ (edges to earlier sets).** Per label `j`, an unmatched vertex
//!   claims the edge to an earlier, still-unmatched neighbor whose
//!   label-`j` out-edge names it (at most one such neighbor can conflict
//!   per sub-slot because an earlier vertex has one label-`j` out-edge).
//!
//! A vertex commits at the end of its window. If it is unmatched it stays
//! passively reachable — later neighbors may still claim it — and
//! terminates once it is matched or every neighbor has committed (no
//! further claims are possible). Its published matched-flag is then
//! frozen-correct, which is all later claimants consult.

use crate::extension::{metrics_from_commits, IterationSchedule};
use crate::forests::decide_out_edges;
use crate::inset::DeltaPlusOneSchedule;
use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, RoundMetrics, SimOutcome, StepCtx, Transition, WireSize};
use std::sync::OnceLock;

/// Working data of a joined vertex.
#[derive(Clone, Debug)]
pub struct MmCore {
    /// H-set index.
    pub h: u32,
    /// My out-edges `(neighbor, forest label)`.
    pub out_labels: Vec<(VertexId, u32)>,
    /// Current in-set coloring value.
    pub c: u64,
    /// My matching partner, if any.
    pub matched: Option<VertexId>,
    /// Commit round (end of my window).
    pub committed: Option<u32>,
}

impl MmCore {}

/// The neighbor-visible slice of [`MmCore`]: the commit *round* is
/// private output bookkeeping — neighbors only ever ask *whether* a
/// vertex has committed, so a single bit travels in its place.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // field meanings mirror `MmCore`
pub struct MmWire {
    pub h: u32,
    pub out_labels: Vec<(VertexId, u32)>,
    pub c: u64,
    pub matched: Option<VertexId>,
    pub committed: bool,
}

impl MmWire {
    fn label_to(&self, u: VertexId) -> Option<u32> {
        self.out_labels
            .iter()
            .find(|&&(w, _)| w == u)
            .map(|&(_, l)| l)
    }
}

/// Wire message for [`MatchingExtension`].
#[derive(Clone, Debug)]
#[allow(missing_docs)] // mirrors the `SMm` conventions below
pub enum MmMsg {
    Active,
    Joined { h: u32 },
    Run(MmWire),
}

impl WireSize for MmMsg {
    fn wire_bits(&self) -> u64 {
        // 2-bit tag for three variants, then the payload.
        match self {
            MmMsg::Active => 2,
            MmMsg::Joined { h } => 2 + h.wire_bits(),
            MmMsg::Run(w) => {
                2 + w.h.wire_bits()
                    + w.out_labels.wire_bits()
                    + w.c.wire_bits()
                    + w.matched.wire_bits()
                    + w.committed.wire_bits()
            }
        }
    }
}

/// Per-vertex state.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum SMm {
    /// Running Procedure Partition.
    Active,
    /// Joined H-set `h`; labeling happens next round.
    Joined { h: u32 },
    /// Labeled and working.
    Run(MmCore),
}

/// Per-vertex output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MmOut {
    /// Round in which the output was committed.
    pub commit_round: u32,
    /// Matching partner, if matched.
    pub matched: Option<VertexId>,
}

/// The Corollary 8.8 protocol.
#[derive(Debug)]
pub struct MatchingExtension {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    sched: OnceLock<(DeltaPlusOneSchedule, IterationSchedule)>,
}

impl MatchingExtension {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize) -> Self {
        MatchingExtension {
            arboricity,
            epsilon: 2.0,
            sched: OnceLock::new(),
        }
    }

    /// Degree threshold `A`.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    fn schedules(&self, ids: &IdAssignment) -> &(DeltaPlusOneSchedule, IterationSchedule) {
        self.sched.get_or_init(|| {
            let inset = DeltaPlusOneSchedule::new(ids.id_space().max(2), self.cap() as u64);
            let cap = self.cap() as u32;
            let dur = inset.rounds() + 2 * cap * (cap + 1) + 2 * cap;
            (inset, IterationSchedule::new(dur))
        })
    }
}

impl Protocol for MatchingExtension {
    type State = SMm;
    type Msg = MmMsg;
    type Output = MmOut;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> SMm {
        SMm::Active
    }

    fn publish(&self, state: &SMm) -> MmMsg {
        match state {
            SMm::Active => MmMsg::Active,
            SMm::Joined { h } => MmMsg::Joined { h: *h },
            SMm::Run(core) => MmMsg::Run(MmWire {
                h: core.h,
                out_labels: core.out_labels.clone(),
                c: core.c,
                matched: core.matched,
                committed: core.committed.is_some(),
            }),
        }
    }

    fn step(&self, ctx: StepCtx<'_, SMm, MmMsg>) -> Transition<SMm, MmOut> {
        match ctx.state.clone() {
            SMm::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, MmMsg::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(SMm::Joined { h: ctx.round })
                } else {
                    Transition::Continue(SMm::Active)
                }
            }
            SMm::Joined { h } => {
                let out_labels = decide_out_edges(&ctx, h, |s| match s {
                    MmMsg::Active => None,
                    MmMsg::Joined { h } => Some(*h),
                    MmMsg::Run(core) => Some(core.h),
                });
                Transition::Continue(SMm::Run(MmCore {
                    h,
                    out_labels,
                    c: ctx.my_id(),
                    matched: None,
                    committed: None,
                }))
            }
            SMm::Run(mut core) => {
                // Adopt claims on me (someone published "matched to me").
                if core.matched.is_none() {
                    let me = ctx.v;
                    for (u, s) in ctx.view.neighbors() {
                        if let MmMsg::Run(other) = s {
                            if other.matched == Some(me) {
                                core.matched = Some(u);
                                break;
                            }
                        }
                    }
                }
                if core.committed.is_some() {
                    return self.park_or_finish(&ctx, core);
                }
                let (inset, iters) = self.schedules(ctx.ids);
                let d = inset.rounds();
                let cap = self.cap() as u32;
                let Some(local) = iters.local_round(core.h, ctx.round) else {
                    return Transition::Continue(SMm::Run(core));
                };
                if local < d {
                    let h = core.h;
                    let peers: Vec<u64> = ctx
                        .view
                        .neighbors()
                        .filter_map(|(u, s)| match s {
                            MmMsg::Run(c2) if c2.h == h => Some(c2.c),
                            MmMsg::Joined { h: j } if *j == h => Some(ctx.ids.id(u)),
                            _ => None,
                        })
                        .collect();
                    core.c = inset.step(local, core.c, &peers);
                    if local + 1 == d {
                        core.c = inset.finish(core.c);
                    }
                    return Transition::Continue(SMm::Run(core));
                }
                if d == 0 && local == 0 {
                    core.c = inset.finish(core.c);
                }
                let t = local - d;
                let sa = 2 * cap * (cap + 1);
                if t < sa {
                    if t % 2 == 0 && core.matched.is_none() {
                        let sub = t / 2;
                        let (f, chat) = (sub / (cap + 1), (sub % (cap + 1)) as u64);
                        if core.c == chat {
                            self.pick_in_set_child(&ctx, &mut core, f);
                        }
                    }
                    return Transition::Continue(SMm::Run(core));
                }
                let t = t - sa;
                if t < 2 * cap {
                    if t.is_multiple_of(2) && core.matched.is_none() {
                        self.claim_earlier(&ctx, &mut core, t / 2);
                    }
                    return Transition::Continue(SMm::Run(core));
                }
                core.committed = Some(ctx.round);
                self.park_or_finish(&ctx, core)
            }
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let n = g.n() as u64;
        let inset = DeltaPlusOneSchedule::new(n.max(2), self.cap() as u64);
        let cap = self.cap() as u32;
        let dur = inset.rounds() + 2 * cap * (cap + 1) + 2 * cap;
        IterationSchedule::new(dur).window_end(itlog::partition_round_bound(n, self.epsilon)) + 16
    }

    fn phase_names(&self) -> &'static [&'static str] {
        &["partition", "label", "window"]
    }

    fn phase_of(&self, state: &SMm) -> simlocal::PhaseId {
        match state {
            SMm::Active => 0,
            SMm::Joined { .. } => 1,
            SMm::Run(_) => 2,
        }
    }
}

impl MatchingExtension {
    /// Sub-slot (f, ĉ): match one unmatched forest-`f` child.
    fn pick_in_set_child(&self, ctx: &StepCtx<'_, SMm, MmMsg>, core: &mut MmCore, f: u32) {
        let me = ctx.v;
        for (u, s) in ctx.view.neighbors() {
            let MmMsg::Run(child) = s else { continue };
            if child.h == core.h && child.label_to(me) == Some(f) && child.matched.is_none() {
                core.matched = Some(u);
                return;
            }
        }
    }

    /// ℬ sub-slot `j`: claim the edge to one unmatched earlier neighbor
    /// whose label-`j` out-edge names me.
    fn claim_earlier(&self, ctx: &StepCtx<'_, SMm, MmMsg>, core: &mut MmCore, j: u32) {
        let me = ctx.v;
        for (u, s) in ctx.view.neighbors() {
            let MmMsg::Run(earlier) = s else { continue };
            if earlier.h < core.h && earlier.label_to(me) == Some(j) && earlier.matched.is_none() {
                core.matched = Some(u);
                return;
            }
        }
    }

    /// After committing: terminate once matched (flag frozen-correct) or
    /// once every neighbor has committed (no further claims possible).
    fn park_or_finish(
        &self,
        ctx: &StepCtx<'_, SMm, MmMsg>,
        core: MmCore,
    ) -> Transition<SMm, MmOut> {
        let done = core.matched.is_some()
            || ctx.view.neighbors().all(|(u, s)| {
                ctx.view.is_terminated(u) || matches!(s, MmMsg::Run(o) if o.committed)
            });
        if done {
            let out = MmOut {
                commit_round: core.committed.expect("committed before finishing"),
                matched: core.matched,
            };
            Transition::Terminate(SMm::Run(core), out)
        } else {
            Transition::Continue(SMm::Run(core))
        }
    }
}

/// Assembles per-vertex outputs into the per-edge matching indicator and
/// the commit-round metrics. Errors on asymmetric claims.
pub fn assemble(g: &Graph, out: &SimOutcome<MmOut>) -> Result<(Vec<bool>, RoundMetrics), String> {
    let mut in_matching = vec![false; g.m()];
    for v in g.vertices() {
        if let Some(u) = out.outputs[v as usize].matched {
            if out.outputs[u as usize].matched != Some(v) {
                return Err(format!(
                    "asymmetric claim: {v} says matched to {u}, {u} says {:?}",
                    out.outputs[u as usize].matched
                ));
            }
            let e = g
                .edge_between(v, u)
                .ok_or_else(|| format!("matched pair ({v},{u}) is not an edge"))?;
            in_matching[e as usize] = true;
        }
    }
    let commits: Vec<u32> = out.outputs.iter().map(|o| o.commit_round).collect();
    Ok((in_matching, metrics_from_commits(&commits)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_and_verify(g: &Graph, a: usize) -> (f64, u32) {
        let p = MatchingExtension::new(a);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).run().unwrap();
        let (mm, commit_metrics) = assemble(g, &out).unwrap();
        verify::assert_ok(verify::maximal_matching(g, &mm));
        commit_metrics.check_identities().unwrap();
        (
            commit_metrics.vertex_averaged(),
            commit_metrics.worst_case(),
        )
    }

    #[test]
    fn valid_on_small_families() {
        run_and_verify(&gen::path(60), 1);
        run_and_verify(&gen::cycle(61), 2);
        run_and_verify(&gen::star(25), 1);
        run_and_verify(&gen::grid(7, 8), 2);
        run_and_verify(&gen::clique(10), 5);
    }

    #[test]
    fn valid_on_forest_unions_and_hubs() {
        let mut rng = ChaCha8Rng::seed_from_u64(120);
        for a in [2usize, 3] {
            let gg = gen::forest_union(400, a, &mut rng);
            run_and_verify(&gg.graph, a);
        }
        let hub = gen::hub_forest(800, 1, 3, 40, &mut rng);
        run_and_verify(&hub.graph, hub.arboricity);
    }

    #[test]
    fn path2_matches_its_edge() {
        let (mm, _) = {
            let g = gen::path(2);
            let p = MatchingExtension::new(1);
            let ids = IdAssignment::identity(2);
            let out = simlocal::Runner::new(&p, &g, &ids).run().unwrap();
            assemble(&g, &out).unwrap()
        };
        assert_eq!(mm, vec![true]);
    }

    #[test]
    fn commit_va_flat_in_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(121);
        let g1 = gen::forest_union(512, 2, &mut rng);
        let g2 = gen::forest_union(8192, 2, &mut rng);
        let (va1, _) = run_and_verify(&g1.graph, 2);
        let (va2, _) = run_and_verify(&g2.graph, 2);
        assert!(
            va2 <= va1 * 1.6 + 3.0,
            "commit VA grew too fast: {va1} -> {va2}"
        );
    }
}
