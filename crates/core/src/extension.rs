//! §8 — solving *problems of extension from any partial solution* with
//! vertex-averaged complexity `O(f(a, n))` instead of worst-case
//! `f(Δ, n)` (Theorem 8.2).
//!
//! The framework: run Procedure Parallelized-Forest-Decomposition; in
//! iteration `i`, once `H_i` exists, run the worst-case algorithm 𝒜 on
//! `G(H_i)` — whose maximum degree is `O(a)` regardless of Δ — extending
//! the partial solution computed on `H_1 ∪ … ∪ H_{i-1}`; for edge-labelled
//! problems an auxiliary algorithm ℬ then fixes the edges crossing to
//! earlier sets. Iterations are sequential, but the active-set decay makes
//! the *average* number of rounds `O(T_𝒜 + T_ℬ)` (Corollary 6.4).
//!
//! This module provides the deterministic iteration timetable shared by
//! the concrete instantiations:
//!
//! * [`crate::coloring::delta_plus_one`] — `(Δ+1)`-vertex-coloring
//!   (Corollary 8.3);
//! * [`crate::mis`] — maximal independent set (Corollary 8.4);
//! * [`crate::edge_coloring`] — `(2Δ−1)`-edge-coloring (Corollary 8.6);
//! * [`crate::matching`] — maximal matching (Corollary 8.8).
//!
//! ## Timetable
//!
//! Each iteration is given the same fixed budget `dur` (a worst-case bound
//! on `T_𝒜 + T_ℬ` inside an H-set, derivable from global knowledge).
//! Iteration `i`'s *work window* is
//! `[window_start(i), window_start(i) + dur)` with
//! `window_start(i) = i + 1 + (i-1)·dur`: it opens after `H_i` has formed
//! (round `i`, visible in round `i+1`) and after window `i−1` has closed.
//! A vertex of `H_i` therefore commits by round `O(i · dur)`, and the
//! exponential decay `n_i ≤ (2/(2+ε))^{i-1} n` gives
//! `Σ_i n_i · i · dur = O(n · dur)` — vertex-averaged `O(dur)`.
//!
//! ## Output-commit semantics for edge-labelled problems
//!
//! When ℬ colors/claims an edge `{x, v}` whose earlier endpoint `x` has
//! already finished its own iteration, later claims on *other* edges at
//! `x` must learn about it. The only 1-hop route is `x` itself, so `x`
//! keeps *relaying* (republishing its incident-edge table) until all its
//! cross edges are settled. Following the paper's §2 (Feuilloley's first
//! definition, which the authors note is equivalent): `x`'s measured
//! running time is the round its own output was *committed*; the
//! subsequent relay rounds carry no computation on `x`'s output. Concrete
//! protocols report commit rounds in their outputs, and
//! [`metrics_from_commits`] rebuilds the round metrics under that
//! definition. EXPERIMENTS.md reports both numbers.

use simlocal::RoundMetrics;

/// The fixed-budget iteration timetable of Theorem 8.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IterationSchedule {
    /// Per-iteration budget (worst-case `T_𝒜 + T_ℬ` rounds inside a set).
    pub dur: u32,
}

impl IterationSchedule {
    /// Builds a timetable with the given per-iteration budget (≥ 1).
    pub fn new(dur: u32) -> Self {
        IterationSchedule { dur: dur.max(1) }
    }

    /// First round of iteration `h`'s work window (`h ≥ 1`). Opens two
    /// rounds after `H_h` forms: one round for the membership mark to
    /// become visible, one for the labeling handshake some instantiations
    /// perform.
    pub fn window_start(&self, h: u32) -> u32 {
        h + 2 + (h - 1) * self.dur
    }

    /// Last round of iteration `h`'s work window.
    pub fn window_end(&self, h: u32) -> u32 {
        self.window_start(h) + self.dur - 1
    }

    /// The local work-round index (0-based) of global round `round` within
    /// iteration `h`'s window, or `None` if the window hasn't opened.
    pub fn local_round(&self, h: u32, round: u32) -> Option<u32> {
        (round >= self.window_start(h)).then(|| round - self.window_start(h))
    }
}

/// Rebuilds round metrics under the output-commit definition: vertex `v`'s
/// running time is `commits[v]` (the round its output was fixed), even if
/// it kept relaying afterwards.
pub fn metrics_from_commits(commits: &[u32]) -> RoundMetrics {
    let worst = commits.iter().copied().max().unwrap_or(0);
    let mut active = vec![0usize; worst as usize];
    for &c in commits {
        // Vertex active in rounds 1..=c.
        for slot in active.iter_mut().take(c as usize) {
            *slot += 1;
        }
    }
    RoundMetrics {
        termination_round: commits.to_vec(),
        active_per_round: active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_disjoint_and_ordered() {
        let s = IterationSchedule::new(7);
        for h in 1..20 {
            assert!(s.window_start(h) > h, "window must open after H_{h} forms");
            assert!(s.window_end(h) < s.window_start(h + 1));
        }
    }

    #[test]
    fn local_round_math() {
        let s = IterationSchedule::new(5);
        let w = s.window_start(3);
        assert_eq!(s.local_round(3, w - 1), None);
        assert_eq!(s.local_round(3, w), Some(0));
        assert_eq!(s.local_round(3, w + 4), Some(4));
    }

    #[test]
    fn commit_metrics_identities() {
        let m = metrics_from_commits(&[1, 3, 2, 3]);
        assert_eq!(m.worst_case(), 3);
        assert_eq!(m.round_sum(), 9);
        assert_eq!(m.active_per_round, vec![4, 3, 2]);
        m.check_identities().unwrap();
    }

    #[test]
    fn commit_metrics_empty() {
        let m = metrics_from_commits(&[]);
        assert_eq!(m.worst_case(), 0);
        assert!(m.check_identities().is_ok());
    }
}
