//! Integer logarithm utilities: `log₂`, the iterated logarithm `log^(k)`,
//! `log* n`, and the paper's `ρ(n)` (§7.5).
//!
//! All functions work on `u64` and round the real logarithm **up** to stay
//! on the safe side of schedule lengths (a schedule one round too long only
//! adds O(1) idle rounds; one round too short breaks correctness).

/// `⌈log₂ n⌉` for `n ≥ 1`; 0 for `n ≤ 1`.
pub fn ceil_log2(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// `⌊log₂ n⌋` for `n ≥ 1`. Panics on 0.
pub fn floor_log2(n: u64) -> u32 {
    assert!(n >= 1, "log of zero");
    63 - n.leading_zeros()
}

/// The `k`-times iterated ceiling logarithm `log^(k) n` (`k ≥ 1`),
/// clamped below at 1 so it can serve as a schedule length.
///
/// `log^(1) n = ⌈log₂ n⌉`, `log^(i) n = ⌈log₂ log^(i-1) n⌉`.
pub fn iterated_log(n: u64, k: u32) -> u64 {
    assert!(k >= 1, "iterated_log needs k ≥ 1");
    let mut x = n;
    for _ in 0..k {
        x = (ceil_log2(x) as u64).max(1);
    }
    x
}

/// `log* n`: the number of times `log₂` must be iterated (starting from
/// `n`) before the value drops to ≤ 2. `log*(n) = 0` for `n ≤ 2`.
pub fn log_star(n: u64) -> u32 {
    let mut x = n;
    let mut k = 0;
    while x > 2 {
        x = ceil_log2(x) as u64;
        k += 1;
    }
    k
}

/// The paper's `ρ(n)` (§7.5): the largest integer such that
/// `log^(ρ(n)-1) n ≥ log* n`. For tiny `n` (where even `log^(1) n < log* n`
/// cannot happen, since `log^(1) n ≥ log* n` for all n) this is well
/// defined and ≥ 2 whenever `n ≥ 4`.
pub fn rho(n: u64) -> u32 {
    let target = log_star(n) as u64;
    let mut k: u32 = 1;
    // Find the largest k with log^(k-1) n ≥ log* n; log^(0) n = n.
    let mut val = n;
    loop {
        // val = log^(k-1) n at loop head.
        let next = (ceil_log2(val) as u64).max(1);
        if next >= target && next < val {
            val = next;
            k += 1;
        } else {
            break;
        }
    }
    k.max(2)
}

/// Worst-case round bound for Procedure Partition with parameter `ε`
/// (§6.1): `⌈log_{(2+ε)/2} n⌉ + 1` rounds suffice for every vertex to join
/// an H-set on a graph of the stated arboricity.
pub fn partition_round_bound(n: u64, epsilon: f64) -> u32 {
    assert!(epsilon > 0.0 && epsilon <= 2.0, "ε must be in (0, 2]");
    if n <= 1 {
        return 1;
    }
    let base = (2.0 + epsilon) / 2.0;
    ((n as f64).ln() / base.ln()).ceil() as u32 + 1
}

/// Number of H-sets the paper's ℓ denotes: `⌊(2/ε)·log₂ n⌋`, clamped ≥ 1.
pub fn ell(n: u64, epsilon: f64) -> u32 {
    (((2.0 / epsilon) * (n.max(2) as f64).log2()).floor() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(1023), 9);
        assert_eq!(floor_log2(1024), 10);
    }

    #[test]
    fn iterated_log_values() {
        assert_eq!(iterated_log(1 << 16, 1), 16);
        assert_eq!(iterated_log(1 << 16, 2), 4);
        assert_eq!(iterated_log(1 << 16, 3), 2);
        assert_eq!(iterated_log(1 << 16, 4), 1);
        assert_eq!(iterated_log(2, 5), 1);
    }

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 0);
        assert_eq!(log_star(3), 1); // ceil_log2(3)=2
        assert_eq!(log_star(4), 1);
        assert_eq!(log_star(5), 2); // 5 -> 3 -> 2
        assert_eq!(log_star(16), 2); // 16 -> 4 -> 2
        assert_eq!(log_star(65536), 3); // 65536 -> 16 -> 4 -> 2
        assert_eq!(log_star(u64::MAX), 4);
    }

    #[test]
    fn rho_definition_holds() {
        for n in [16u64, 256, 1 << 16, 1 << 32, 1 << 50] {
            let r = rho(n);
            let ls = log_star(n) as u64;
            // log^(ρ-1) n ≥ log* n must hold (log^(0) n = n).
            let val = if r == 1 { n } else { iterated_log(n, r - 1) };
            assert!(val >= ls, "n={n}: log^({}) = {val} < log* = {ls}", r - 1);
            // and ρ ≤ log* n + O(1): sanity that rho isn't runaway.
            assert!(r as u64 <= ls + 2, "n={n}: rho={r} too large vs log*={ls}");
        }
    }

    #[test]
    fn rho_at_least_two() {
        assert!(rho(4) >= 2);
        assert!(rho(1 << 20) >= 2);
    }

    #[test]
    fn partition_bound_monotone_and_sane() {
        // ε = 2 gives base 2: bound ≈ log2 n + 1.
        assert_eq!(partition_round_bound(1024, 2.0), 11);
        assert!(partition_round_bound(1024, 0.5) > partition_round_bound(1024, 2.0));
        assert_eq!(partition_round_bound(1, 1.0), 1);
    }

    #[test]
    fn ell_values() {
        assert_eq!(ell(1024, 2.0), 10);
        assert_eq!(ell(1024, 1.0), 20);
        assert!(ell(2, 2.0) >= 1);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;

    #[test]
    fn iterated_log_monotone_in_k_and_n() {
        for n in [16u64, 1 << 20, 1 << 50] {
            for k in 1..6 {
                assert!(iterated_log(n, k) >= iterated_log(n, k + 1));
            }
        }
        for k in 1..5 {
            assert!(iterated_log(1 << 40, k) >= iterated_log(1 << 10, k));
        }
    }

    #[test]
    fn log_star_via_iterated_log() {
        // log*(n) is the smallest k with log^(k) n ≤ 2 (for n > 2).
        for n in [3u64, 17, 1 << 16, 1 << 40] {
            let ls = log_star(n);
            assert!(iterated_log(n, ls) <= 2, "log^({ls}) of {n} should be ≤ 2");
            if ls > 1 {
                assert!(iterated_log(n, ls - 1) > 2);
            }
        }
    }

    #[test]
    fn partition_bound_covers_decay() {
        // (2/(2+ε))^L · n < 1 must hold at the bound for several ε.
        for eps in [0.5f64, 1.0, 2.0] {
            for n in [64u64, 4096, 1 << 20] {
                let l = partition_round_bound(n, eps);
                let shrink = (2.0 / (2.0 + eps)).powi(l as i32) * n as f64;
                assert!(shrink < 1.0, "ε={eps} n={n}: residue {shrink}");
            }
        }
    }
}
