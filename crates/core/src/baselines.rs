//! Worst-case reference algorithms — the "previous running time" columns
//! of Tables 1–2.
//!
//! All of these produce the same *kinds* of solutions as the §7/§8
//! protocols but follow the classical execution discipline: no vertex
//! retires early, so the vertex-averaged complexity equals (or tracks)
//! the worst case. Concretely:
//!
//! * [`GlobalLinial`] — Linial's `O(Δ²)`-coloring of the whole graph in
//!   `O(log* n)` rounds \[19\];
//! * [`GlobalLinialKw`] — classical `(Δ+1)`-coloring: iterated Linial
//!   then Kuhn–Wattenhofer reduction against **all** neighbors
//!   (`O(Δ log Δ + log* n)`; the stand-in for the `O(Δ + log* n)` of \[7\]
//!   and the `O(√Δ log^2.5 Δ + log* n)` of \[13\], see DESIGN.md);
//! * [`ArbLinialOneShot`] — `O(a² log² n)`-coloring from scratch:
//!   Procedure Forest-Decomposition (full `O(log n)` schedule for
//!   everyone) + one Arb-Linial round (the classical form of §7.2);
//! * [`ArbLinialFull`] — `O(a²)`-coloring from scratch: full forest
//!   decomposition + iterated Arb-Linial (`O(log n + log* n)` for every
//!   vertex — the \[8\] baseline of Table 1's rows 5–6);
//! * [`crate::forests::ForestDecompositionBaseline`] and
//!   [`crate::arb_color::ArbColor`] are the remaining baselines and live
//!   with their fast counterparts.

use crate::coverfree::CoverFree;
use crate::forests::FState;
use crate::inset::{DeltaPlusOneSchedule, LinialSchedule};
use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition, WireSize};
use std::sync::OnceLock;

/// Linial's `O(Δ²)`-coloring of the whole graph in `O(log* n)` rounds.
#[derive(Debug, Default)]
pub struct GlobalLinial {
    sched: OnceLock<LinialSchedule>,
}

impl GlobalLinial {
    /// Fresh instance.
    pub fn new() -> Self {
        GlobalLinial {
            sched: OnceLock::new(),
        }
    }

    fn schedule(&self, g: &Graph, ids: &IdAssignment) -> &LinialSchedule {
        self.sched.get_or_init(|| {
            LinialSchedule::new(ids.id_space().max(2), g.max_degree().max(1) as u64)
        })
    }

    /// Final palette (`O(Δ²)`).
    pub fn palette(&self, g: &Graph, ids: &IdAssignment) -> u64 {
        self.schedule(g, ids).final_palette()
    }
}

impl Protocol for GlobalLinial {
    type State = u64;
    type Msg = u64;
    type Output = u64;

    fn init(&self, _: &Graph, ids: &IdAssignment, v: VertexId) -> u64 {
        ids.id(v)
    }

    fn publish(&self, state: &u64) -> u64 {
        *state
    }

    fn step(&self, ctx: StepCtx<'_, u64>) -> Transition<u64, u64> {
        let sched = self.schedule(ctx.graph, ctx.ids);
        let i = ctx.round - 1;
        if i >= sched.rounds() {
            return Transition::Terminate(*ctx.state, *ctx.state);
        }
        let others: Vec<u64> = ctx.view.neighbors().map(|(_, &c)| c).collect();
        let next = sched.step(i, *ctx.state, &others);
        if i + 1 == sched.rounds() {
            Transition::Terminate(next, next)
        } else {
            Transition::Continue(next)
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        LinialSchedule::new(g.n().max(2) as u64, g.max_degree().max(1) as u64).rounds() + 4
    }
}

/// Classical `(Δ+1)`-coloring of the whole graph: iterated Linial then KW
/// reduction against all neighbors. Every vertex runs the full
/// deterministic schedule.
#[derive(Debug, Default)]
pub struct GlobalLinialKw {
    sched: OnceLock<DeltaPlusOneSchedule>,
}

impl GlobalLinialKw {
    /// Fresh instance.
    pub fn new() -> Self {
        GlobalLinialKw {
            sched: OnceLock::new(),
        }
    }

    fn schedule(&self, g: &Graph, ids: &IdAssignment) -> &DeltaPlusOneSchedule {
        self.sched.get_or_init(|| {
            DeltaPlusOneSchedule::new(ids.id_space().max(2), g.max_degree().max(1) as u64)
        })
    }
}

impl Protocol for GlobalLinialKw {
    type State = u64;
    type Msg = u64;
    type Output = u64;

    fn init(&self, _: &Graph, ids: &IdAssignment, v: VertexId) -> u64 {
        ids.id(v)
    }

    fn publish(&self, state: &u64) -> u64 {
        *state
    }

    fn step(&self, ctx: StepCtx<'_, u64>) -> Transition<u64, u64> {
        let sched = self.schedule(ctx.graph, ctx.ids);
        let i = ctx.round - 1;
        if i >= sched.rounds() {
            return Transition::Terminate(*ctx.state, sched.finish(*ctx.state));
        }
        let others: Vec<u64> = ctx.view.neighbors().map(|(_, &c)| c).collect();
        let next = sched.step(i, *ctx.state, &others);
        if i + 1 == sched.rounds() {
            Transition::Terminate(next, sched.finish(next))
        } else {
            Transition::Continue(next)
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        DeltaPlusOneSchedule::new(g.n().max(2) as u64, g.max_degree().max(1) as u64).rounds() + 4
    }
}

/// `O(a² log² n)`-coloring the classical way: full Procedure
/// Forest-Decomposition, then one Arb-Linial round. Worst case (and
/// vertex average) `Θ(log n)`.
#[derive(Debug)]
pub struct ArbLinialOneShot {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    fam: OnceLock<CoverFree>,
}

impl ArbLinialOneShot {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize) -> Self {
        ArbLinialOneShot {
            arboricity,
            epsilon: 2.0,
            fam: OnceLock::new(),
        }
    }

    /// Degree threshold `A`.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    /// The cover-free family (palette = its ground set).
    pub fn family(&self, ids: &IdAssignment) -> CoverFree {
        *self
            .fam
            .get_or_init(|| CoverFree::for_palette(ids.id_space().max(2), self.cap() as u64))
    }
}

impl Protocol for ArbLinialOneShot {
    type State = FState;
    type Msg = FState;
    type Output = u64;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> FState {
        FState::Active
    }

    fn publish(&self, state: &FState) -> FState {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, FState>) -> Transition<FState, u64> {
        let l = itlog::partition_round_bound(ctx.graph.n() as u64, self.epsilon);
        let next = match ctx.state.clone() {
            FState::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, FState::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    FState::Joined { h: ctx.round }
                } else {
                    FState::Active
                }
            }
            s @ FState::Joined { .. } => s,
        };
        if ctx.round <= l {
            return Transition::Continue(next);
        }
        // Round L+1: everyone knows every join round; one Linial step.
        let FState::Joined { h } = next else {
            unreachable!("partition done by L")
        };
        let my_id = ctx.my_id();
        let parents: Vec<u64> = ctx
            .view
            .neighbors()
            .filter_map(|(u, s)| match s {
                FState::Active => unreachable!("partition done by L"),
                FState::Joined { h: j } => {
                    (*j > h || (*j == h && ctx.ids.id(u) > my_id)).then(|| ctx.ids.id(u))
                }
            })
            .collect();
        let color = self.family(ctx.ids).reduce(my_id, &parents);
        Transition::Terminate(next, color)
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        itlog::partition_round_bound(g.n() as u64, self.epsilon) + 8
    }
}

/// `O(a²)`-coloring the classical way: full forest decomposition, then
/// the iterated Arb-Linial schedule. Worst case (and vertex average)
/// `Θ(log n + log* n)` — the \[8\] baseline.
#[derive(Debug)]
pub struct ArbLinialFull {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    sched: OnceLock<LinialSchedule>,
}

/// State: partition mark plus the running color during the Linial phase.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum SAlf {
    /// Partition phase.
    Part(FState),
    /// Linial phase with current color.
    Color { h: u32, c: u64 },
}

impl WireSize for SAlf {
    fn wire_bits(&self) -> u64 {
        match self {
            SAlf::Part(fs) => 1 + fs.wire_bits(),
            SAlf::Color { h, c } => 1 + h.wire_bits() + c.wire_bits(),
        }
    }
}

impl ArbLinialFull {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize) -> Self {
        ArbLinialFull {
            arboricity,
            epsilon: 2.0,
            sched: OnceLock::new(),
        }
    }

    /// Degree threshold `A`.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    /// Shared Linial schedule.
    pub fn schedule(&self, ids: &IdAssignment) -> &LinialSchedule {
        self.sched
            .get_or_init(|| LinialSchedule::new(ids.id_space().max(2), self.cap() as u64))
    }
}

impl Protocol for ArbLinialFull {
    type State = SAlf;
    type Msg = SAlf;
    type Output = u64;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> SAlf {
        SAlf::Part(FState::Active)
    }

    fn publish(&self, state: &SAlf) -> SAlf {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, SAlf>) -> Transition<SAlf, u64> {
        let l = itlog::partition_round_bound(ctx.graph.n() as u64, self.epsilon);
        let sched = self.schedule(ctx.ids);
        match ctx.state.clone() {
            SAlf::Part(fs) => {
                let next = match fs {
                    FState::Active => {
                        let active = ctx
                            .view
                            .neighbors()
                            .filter(|(_, s)| matches!(s, SAlf::Part(FState::Active)))
                            .count();
                        if partition_step(active, self.cap()) {
                            FState::Joined { h: ctx.round }
                        } else {
                            FState::Active
                        }
                    }
                    j @ FState::Joined { .. } => j,
                };
                if ctx.round <= l {
                    Transition::Continue(SAlf::Part(next))
                } else {
                    let FState::Joined { h } = next else {
                        unreachable!("partition done by L")
                    };
                    self.linial(&ctx, h, ctx.my_id(), ctx.round - l - 1, sched)
                }
            }
            SAlf::Color { h, c } => self.linial(&ctx, h, c, ctx.round - l - 1, sched),
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let n = g.n() as u64;
        itlog::partition_round_bound(n, self.epsilon)
            + LinialSchedule::new(n.max(2), self.cap() as u64).rounds()
            + 8
    }
}

impl ArbLinialFull {
    fn linial(
        &self,
        ctx: &StepCtx<'_, SAlf>,
        h: u32,
        cur: u64,
        i: u32,
        sched: &LinialSchedule,
    ) -> Transition<SAlf, u64> {
        if i >= sched.rounds() {
            return Transition::Terminate(SAlf::Color { h, c: cur }, cur);
        }
        let my_id = ctx.my_id();
        let parents: Vec<u64> = ctx
            .view
            .neighbors()
            .filter_map(|(u, s)| {
                let (j, col) = match s {
                    SAlf::Part(FState::Joined { h: j }) => (*j, ctx.ids.id(u)),
                    SAlf::Color { h: j, c } => (*j, *c),
                    SAlf::Part(FState::Active) => unreachable!("partition done"),
                };
                (j > h || (j == h && ctx.ids.id(u) > my_id)).then_some(col)
            })
            .collect();
        let next = sched.step(i, cur, &parents);
        if i + 1 == sched.rounds() {
            Transition::Terminate(SAlf::Color { h, c: next }, next)
        } else {
            Transition::Continue(SAlf::Color { h, c: next })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn global_linial_proper_delta_squared() {
        let g = gen::grid(10, 10);
        let ids = IdAssignment::identity(g.n());
        let p = GlobalLinial::new();
        let out = simlocal::Runner::new(&p, &g, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            &g,
            &out.outputs,
            p.palette(&g, &ids) as usize,
        ));
        // log*-ish uniform termination.
        assert_eq!(
            out.metrics.worst_case() as f64,
            out.metrics.vertex_averaged()
        );
    }

    #[test]
    fn global_linial_kw_is_delta_plus_one() {
        let g = gen::cycle(200);
        let ids = IdAssignment::identity(200);
        let out = simlocal::Runner::new(&GlobalLinialKw::new(), &g, &ids)
            .run()
            .unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(&g, &out.outputs, 3));
    }

    #[test]
    fn one_shot_matches_fast_algorithm_colors() {
        // The classical one-shot and the §7.2 protocol compute the same
        // coloring family; the classical one just pays log n everywhere.
        let mut rng = ChaCha8Rng::seed_from_u64(150);
        let gg = gen::forest_union(1024, 2, &mut rng);
        let ids = IdAssignment::identity(1024);
        let base = ArbLinialOneShot::new(2);
        let slow = simlocal::Runner::new(&base, &gg.graph, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            &gg.graph,
            &slow.outputs,
            base.family(&ids).ground_size() as usize,
        ));
        let fast = crate::coloring::a2logn::ColoringA2LogN::new(2);
        let quick = simlocal::Runner::new(&fast, &gg.graph, &ids).run().unwrap();
        assert_eq!(slow.outputs, quick.outputs);
        assert!(
            slow.metrics.vertex_averaged() > 3.0 * quick.metrics.vertex_averaged(),
            "classical VA {} vs parallelized VA {}",
            slow.metrics.vertex_averaged(),
            quick.metrics.vertex_averaged()
        );
    }

    #[test]
    fn full_arb_linial_proper_a_squared() {
        let mut rng = ChaCha8Rng::seed_from_u64(151);
        let gg = gen::forest_union(2048, 2, &mut rng);
        let ids = IdAssignment::identity(2048);
        let p = ArbLinialFull::new(2);
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            &gg.graph,
            &out.outputs,
            p.schedule(&ids).final_palette() as usize,
        ));
        // Everyone pays L + log* n.
        let l = itlog::partition_round_bound(2048, 2.0);
        assert!(out.metrics.vertex_averaged() >= l as f64);
    }
}
