//! Procedure Partition (§6.1) — the basic building block.
//!
//! Input: a graph `G`, its arboricity `a`, and `0 < ε ≤ 2`. In every round
//! `i`, each still-active vertex whose number of **active** neighbors is at
//! most `A = ⌊(2+ε)·a⌋` joins the H-set `H_i` and becomes inactive. A
//! counting argument (\[4\], Lemma 6.1 here) shows at least an `ε/(2+ε)`
//! fraction leaves per round, so the worst case is `O(log n)` rounds while
//! the vertex-averaged complexity is `O(1)` (Theorem 6.3).
//!
//! The protocol is the purest expression of the paper's central trick —
//! exponential decay of the active set — and is embedded (via
//! [`partition_step`]) in nearly every other protocol in this crate.

use crate::itlog;
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition};

/// The degree threshold `A = ⌊(2+ε)·a⌋`, at least 1.
pub fn degree_cap(arboricity: usize, epsilon: f64) -> usize {
    assert!(epsilon > 0.0 && epsilon <= 2.0, "ε must be in (0, 2]");
    (((2.0 + epsilon) * arboricity.max(1) as f64).floor() as usize).max(1)
}

/// One partition decision: should an active vertex with `active_degree`
/// still-active neighbors join the current H-set?
#[inline]
pub fn partition_step(active_degree: usize, cap: usize) -> bool {
    active_degree <= cap
}

/// Procedure Partition as a standalone protocol.
///
/// Output per vertex: the index `i ≥ 1` of the H-set it joined — which is
/// also, by construction, its termination round.
#[derive(Clone, Copy, Debug)]
pub struct Partition {
    /// Arboricity known to all vertices (§6.1 assumption).
    pub arboricity: usize,
    /// The ε parameter, `0 < ε ≤ 2`.
    pub epsilon: f64,
}

impl Partition {
    /// Standard instance with `ε = 2` (threshold `4a`).
    pub fn new(arboricity: usize) -> Self {
        Partition {
            arboricity,
            epsilon: 2.0,
        }
    }

    /// Instance with explicit ε.
    pub fn with_epsilon(arboricity: usize, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 2.0);
        Partition {
            arboricity,
            epsilon,
        }
    }

    /// The threshold `A` this instance uses.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }
}

impl Protocol for Partition {
    type State = ();
    type Msg = ();
    type Output = u32;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) {}

    fn publish(&self, _: &()) {}

    fn step(&self, ctx: StepCtx<'_, ()>) -> Transition<(), u32> {
        if partition_step(ctx.view.active_degree(), self.cap()) {
            Transition::Terminate((), ctx.round)
        } else {
            Transition::Continue(())
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        // The analytic bound plus slack; exceeding this means the declared
        // arboricity was wrong for the input graph.
        itlog::partition_round_bound(g.n() as u64, self.epsilon) + 8
    }
}

/// Convenience: runs Procedure Partition and returns the H-index of every
/// vertex along with the metrics.
pub fn run_partition(
    g: &Graph,
    arboricity: usize,
    epsilon: f64,
) -> (Vec<u32>, simlocal::RoundMetrics) {
    let p = Partition::with_epsilon(arboricity, epsilon);
    let ids = IdAssignment::identity(g.n());
    let out = simlocal::Runner::new(&p, g, &ids)
        .run()
        .expect("partition terminates on valid arboricity");
    (out.outputs, out.metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn caps() {
        assert_eq!(degree_cap(1, 2.0), 4);
        assert_eq!(degree_cap(3, 2.0), 12);
        assert_eq!(degree_cap(2, 0.5), 5);
        assert_eq!(degree_cap(0, 2.0), 4); // arboricity clamped up to 1
    }

    #[test]
    fn tree_partitions_in_one_or_two_sets() {
        // A path has max degree 2 ≤ 4 = cap(1): everyone joins H_1.
        let g = gen::path(50);
        let (h, m) = run_partition(&g, 1, 2.0);
        assert!(h.iter().all(|&i| i == 1));
        assert_eq!(m.worst_case(), 1);
        verify::assert_ok(verify::h_partition(&g, &h, degree_cap(1, 2.0)));
    }

    #[test]
    fn h_partition_property_on_forest_unions() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for k in [1usize, 2, 4] {
            let gg = gen::forest_union(800, k, &mut rng);
            let (h, m) = run_partition(&gg.graph, gg.arboricity, 2.0);
            verify::assert_ok(verify::h_partition(&gg.graph, &h, degree_cap(k, 2.0)));
            m.check_identities().unwrap();
            // Termination round equals H-index by construction.
            for v in gg.graph.vertices() {
                assert_eq!(h[v as usize], m.termination_round[v as usize]);
            }
        }
    }

    #[test]
    fn exponential_decay_lemma_6_1() {
        // active[i] ≤ (2/(2+ε))^(i-1) · n for every round i.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let gg = gen::forest_union(4096, 2, &mut rng);
        let (_, m) = run_partition(&gg.graph, 2, 2.0);
        let n = gg.graph.n() as f64;
        for (i, &a) in m.active_per_round.iter().enumerate() {
            let bound = (2.0f64 / 4.0).powi(i as i32) * n;
            assert!(
                a as f64 <= bound + 1e-9,
                "round {}: active {a} > bound {bound}",
                i + 1
            );
        }
    }

    #[test]
    fn vertex_averaged_is_constant_lemma_6_2() {
        // RoundSum(V) ≤ n · Σ (2/(2+ε))^i = n·(2+ε)/ε ⇒ VA ≤ (2+ε)/ε = 2
        // for ε = 2.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for n in [256usize, 1024, 4096] {
            let gg = gen::forest_union(n, 3, &mut rng);
            let (_, m) = run_partition(&gg.graph, 3, 2.0);
            assert!(
                m.vertex_averaged() <= 2.0,
                "n={n}: VA {} exceeds analytic bound 2.0",
                m.vertex_averaged()
            );
        }
    }

    #[test]
    fn smaller_epsilon_slower_decay_but_tighter_cap() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let gg = gen::forest_union(2048, 2, &mut rng);
        let (_, m_tight) = run_partition(&gg.graph, 2, 0.5);
        let (_, m_loose) = run_partition(&gg.graph, 2, 2.0);
        // Looser cap (bigger ε) retires vertices at least as fast.
        assert!(m_loose.vertex_averaged() <= m_tight.vertex_averaged() + 1e-9);
    }

    #[test]
    fn worst_case_grows_with_n_on_dense_families() {
        // On cliques declared with their true arboricity the partition
        // still takes multiple rounds; just confirm it terminates within
        // the analytic bound and H-property holds.
        let g = gen::clique(64);
        let a = 32; // ⌈n/2⌉
        let (h, m) = run_partition(&g, a, 2.0);
        verify::assert_ok(verify::h_partition(&g, &h, degree_cap(a, 2.0)));
        assert!(m.worst_case() <= itlog::partition_round_bound(64, 2.0));
    }

    #[test]
    fn nested_shells_separate_worst_case_from_average() {
        // The adversarial witness: shells retire one layer at a time, so
        // the worst case grows with log n while the average stays O(1).
        let mut wcs = Vec::new();
        for levels in [8u32, 12, 16] {
            let gg = gen::nested_shells(levels, 3);
            let (h, m) = run_partition(&gg.graph, 3, 0.5);
            verify::assert_ok(verify::h_partition(&gg.graph, &h, degree_cap(3, 0.5)));
            assert!(m.vertex_averaged() <= 3.0, "VA must stay O(1)");
            wcs.push(m.worst_case());
        }
        assert!(wcs[1] > wcs[0] && wcs[2] > wcs[1], "WC must grow: {wcs:?}");
    }

    #[test]
    fn wrong_arboricity_hits_round_cap() {
        // Declaring arboricity 1 on a clique: nobody's degree drops below
        // the cap, so the engine must report livelock, not hang.
        let g = gen::clique(20);
        let p = Partition::new(1);
        let ids = IdAssignment::identity(20);
        assert!(simlocal::Runner::new(&p, &g, &ids).run().is_err());
    }
}
