//! Corollary 8.4 — maximal independent set in `O(a + log* n)`
//! vertex-averaged rounds, plus the classical Luby baseline.
//!
//! Extension-framework instantiation: inside each H-set, compute the
//! in-set `(A+1)`-coloring, then sweep the `A + 1` color classes; a vertex
//! joins the MIS in its slot iff no neighbor — in an earlier set, or in an
//! earlier slot of its own set — is already in the MIS (the reduction from
//! MIS to coloring, §3.2 of \[4\], run per H-set). Independence and
//! maximality extend across sets because later vertices always see the
//! committed outputs of earlier ones.

use crate::extension::IterationSchedule;
use crate::inset::DeltaPlusOneSchedule;
use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use rand::Rng;
use simlocal::{Protocol, StepCtx, Transition, WireSize};
use std::sync::OnceLock;

/// Per-vertex state.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum SMis {
    /// Running Procedure Partition.
    Active,
    /// Joined H-set `h`, waiting for its iteration window.
    Joined { h: u32 },
    /// Running the in-set slot-order coloring.
    InSet { h: u32, c: u64 },
    /// Holding slot color, waiting for its decision slot.
    Await { h: u32, slot: u64 },
    /// Decided (terminal): `true` = in the MIS.
    Fin { h: u32, in_mis: bool },
}

/// Wire message for [`MisExtension`]. Neighbors need: the partition
/// status, a joiner's or in-set vertex's H-index and running color, and a
/// decided vertex's membership bit. An `Await` vertex's slot and H-index
/// are private (it is just holding until its decision round), and a
/// finished vertex's H-index never travels either — so both variants trim
/// to (near-)empty.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // mirrors the `SMis` conventions above
pub enum MisMsg {
    Active,
    Joined { h: u32 },
    InSet { h: u32, c: u64 },
    Await,
    Fin { in_mis: bool },
}

impl WireSize for MisMsg {
    fn wire_bits(&self) -> u64 {
        // 3-bit tag for five variants, then the payload.
        match self {
            MisMsg::Active | MisMsg::Await => 3,
            MisMsg::Joined { h } => 3 + h.wire_bits(),
            MisMsg::InSet { h, c } => 3 + h.wire_bits() + c.wire_bits(),
            MisMsg::Fin { in_mis } => 3 + in_mis.wire_bits(),
        }
    }
}

/// The Corollary 8.4 protocol.
#[derive(Debug)]
pub struct MisExtension {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    sched: OnceLock<(DeltaPlusOneSchedule, IterationSchedule)>,
}

impl MisExtension {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize) -> Self {
        MisExtension {
            arboricity,
            epsilon: 2.0,
            sched: OnceLock::new(),
        }
    }

    /// Degree threshold `A`.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    fn schedules(&self, ids: &IdAssignment) -> &(DeltaPlusOneSchedule, IterationSchedule) {
        self.sched.get_or_init(|| {
            let inset = DeltaPlusOneSchedule::new(ids.id_space().max(2), self.cap() as u64);
            let dur = inset.rounds() + self.cap() as u32 + 1;
            (inset, IterationSchedule::new(dur))
        })
    }
}

impl Protocol for MisExtension {
    type State = SMis;
    type Msg = MisMsg;
    type Output = bool;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> SMis {
        SMis::Active
    }

    // LOCAL-safe: `init` is constant, the schedules are keyed only on the
    // ID space and the partition cap (fixed across edge edits — churn
    // never changes n), and `step` reads only the neighbor view, the
    // round counter, and the vertex's own ID. A vertex's trajectory is
    // therefore a function of its round-radius ball, so warm starts may
    // freeze anything outside the edited region.
    fn dependence_radius(&self, _: &Graph) -> Option<u32> {
        Some(u32::MAX)
    }

    fn publish(&self, state: &SMis) -> MisMsg {
        match state {
            SMis::Active => MisMsg::Active,
            SMis::Joined { h } => MisMsg::Joined { h: *h },
            SMis::InSet { h, c } => MisMsg::InSet { h: *h, c: *c },
            SMis::Await { .. } => MisMsg::Await,
            SMis::Fin { in_mis, .. } => MisMsg::Fin { in_mis: *in_mis },
        }
    }

    fn step(&self, ctx: StepCtx<'_, SMis, MisMsg>) -> Transition<SMis, bool> {
        let (inset, iters) = self.schedules(ctx.ids);
        let d = inset.rounds();
        match ctx.state.clone() {
            SMis::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, MisMsg::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(SMis::Joined { h: ctx.round })
                } else {
                    Transition::Continue(SMis::Active)
                }
            }
            SMis::Joined { h } => match iters.local_round(h, ctx.round) {
                None => Transition::Continue(SMis::Joined { h }),
                Some(_) => self.inset_step(&ctx, h, ctx.my_id(), 0, d),
            },
            SMis::InSet { h, c } => {
                let i = iters.local_round(h, ctx.round).expect("window open");
                self.inset_step(&ctx, h, c, i, d)
            }
            SMis::Await { h, slot } => {
                let i = iters.local_round(h, ctx.round).expect("window open");
                self.slot_step(&ctx, h, slot, i - d)
            }
            SMis::Fin { .. } => unreachable!("terminal"),
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let n = g.n() as u64;
        let inset = DeltaPlusOneSchedule::new(n.max(2), self.cap() as u64);
        let dur = inset.rounds() + self.cap() as u32 + 1;
        IterationSchedule::new(dur).window_end(itlog::partition_round_bound(n, self.epsilon)) + 8
    }

    fn phase_names(&self) -> &'static [&'static str] {
        &["partition", "await_window", "inset_color", "slot_sweep"]
    }

    fn phase_of(&self, state: &SMis) -> simlocal::PhaseId {
        match state {
            SMis::Active => 0,
            SMis::Joined { .. } => 1,
            SMis::InSet { .. } => 2,
            SMis::Await { .. } | SMis::Fin { .. } => 3,
        }
    }
}

impl MisExtension {
    fn inset_step(
        &self,
        ctx: &StepCtx<'_, SMis, MisMsg>,
        h: u32,
        cur: u64,
        i: u32,
        d: u32,
    ) -> Transition<SMis, bool> {
        let (inset, _) = self.schedules(ctx.ids);
        if i >= d {
            return self.slot_step(ctx, h, inset.finish(cur), i - d);
        }
        let peers: Vec<u64> = ctx
            .view
            .neighbors()
            .filter_map(|(u, s)| match s {
                MisMsg::InSet { h: j, c } if *j == h => Some(*c),
                // Peers entering the window this round still expose their
                // IDs as their initial colors.
                MisMsg::Joined { h: j } if *j == h => Some(ctx.ids.id(u)),
                _ => None,
            })
            .collect();
        let next = inset.step(i, cur, &peers);
        if i + 1 == d {
            Transition::Continue(SMis::Await {
                h,
                slot: inset.finish(next),
            })
        } else {
            Transition::Continue(SMis::InSet { h, c: next })
        }
    }

    fn slot_step(
        &self,
        ctx: &StepCtx<'_, SMis, MisMsg>,
        h: u32,
        slot: u64,
        slot_round: u32,
    ) -> Transition<SMis, bool> {
        if (slot_round as u64) < slot {
            return Transition::Continue(SMis::Await { h, slot });
        }
        let blocked = ctx
            .view
            .neighbors()
            .any(|(_, s)| matches!(s, MisMsg::Fin { in_mis: true }));
        Transition::Terminate(
            SMis::Fin {
                h,
                in_mis: !blocked,
            },
            !blocked,
        )
    }
}

/// Luby's randomized MIS \[21\] — the classical baseline. Each phase is two
/// rounds: undecided vertices draw a random priority; a vertex whose
/// priority strictly beats all undecided neighbors' joins the MIS; in the
/// next round, neighbors of new MIS vertices retire as non-members.
/// `O(log n)` phases with high probability.
#[derive(Clone, Copy, Debug, Default)]
pub struct LubyMis;

/// Luby per-vertex state.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum SLuby {
    /// Undecided; carries this phase's priority draw.
    Drawing { priority: u64 },
    /// Declared itself in the MIS last round (neighbors retire now).
    Winner,
}

impl WireSize for SLuby {
    fn wire_bits(&self) -> u64 {
        match self {
            SLuby::Drawing { priority } => 1 + priority.wire_bits(),
            SLuby::Winner => 1,
        }
    }
}

impl Protocol for LubyMis {
    type State = SLuby;
    type Msg = SLuby;
    type Output = bool;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> SLuby {
        // Priorities for round 1 are drawn in round 1 (the init value is a
        // placeholder nobody reads before then).
        SLuby::Drawing { priority: 0 }
    }

    // LOCAL-safe: priorities come from the per-(seed, vertex, round)
    // stream, resolution reads only active neighbors, and `max_rounds`
    // depends only on n (which edge churn never changes). No global
    // topology reads, so the warm-start freeze rule applies.
    fn dependence_radius(&self, _: &Graph) -> Option<u32> {
        Some(u32::MAX)
    }

    fn publish(&self, state: &SLuby) -> SLuby {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, SLuby>) -> Transition<SLuby, bool> {
        match ctx.state {
            SLuby::Winner => Transition::Terminate(SLuby::Winner, true),
            SLuby::Drawing { .. } => {
                // Odd rounds: draw + publish. Even rounds: resolve.
                if ctx.round % 2 == 1 {
                    let p: u64 = ctx.rng().gen();
                    // Tie-break by ID to make wins unambiguous.
                    Transition::Continue(SLuby::Drawing {
                        priority: (p << 20) | (ctx.my_id() & 0xFFFFF),
                    })
                } else {
                    let my = match ctx.state {
                        SLuby::Drawing { priority } => *priority,
                        SLuby::Winner => unreachable!(),
                    };
                    // Retire if a neighbor won the previous resolution
                    // (terminated winners keep publishing `Winner`).
                    if ctx
                        .view
                        .neighbors()
                        .any(|(_, s)| matches!(s, SLuby::Winner))
                    {
                        return Transition::Terminate(SLuby::Drawing { priority: my }, false);
                    }
                    let beats_all = ctx.view.active_neighbors().all(|(_, s)| match s {
                        SLuby::Drawing { priority } => my > *priority,
                        SLuby::Winner => false,
                    });
                    if beats_all {
                        // Publish the win; terminate next round so
                        // neighbors observe it first.
                        Transition::Continue(SLuby::Winner)
                    } else {
                        Transition::Continue(SLuby::Drawing { priority: my })
                    }
                }
            }
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        64 * (g.n().max(2) as u32).ilog2() + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_mis(g: &Graph, a: usize) -> (f64, u32) {
        let p = MisExtension::new(a);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).run().unwrap();
        verify::assert_ok(verify::maximal_independent_set(g, &out.outputs));
        out.metrics.check_identities().unwrap();
        (out.metrics.vertex_averaged(), out.metrics.worst_case())
    }

    #[test]
    fn valid_mis_on_families() {
        run_mis(&gen::path(100), 1);
        run_mis(&gen::cycle(101), 2);
        run_mis(&gen::grid(9, 12), 2);
        run_mis(&gen::star(40), 1);
        run_mis(&gen::clique(12), 6);
    }

    #[test]
    fn valid_mis_on_forest_unions() {
        let mut rng = ChaCha8Rng::seed_from_u64(100);
        for a in [2usize, 4] {
            let gg = gen::forest_union(800, a, &mut rng);
            run_mis(&gg.graph, a);
        }
        let hub = gen::hub_forest(1500, 2, 3, 80, &mut rng);
        run_mis(&hub.graph, hub.arboricity);
    }

    #[test]
    fn va_flat_in_n_corollary_8_5() {
        let mut rng = ChaCha8Rng::seed_from_u64(101);
        let g1 = gen::forest_union(1024, 2, &mut rng);
        let g2 = gen::forest_union(32768, 2, &mut rng);
        let (va1, _) = run_mis(&g1.graph, 2);
        let (va2, _) = run_mis(&g2.graph, 2);
        assert!(va2 <= va1 * 1.7 + 3.0, "VA grew too fast: {va1} -> {va2}");
    }

    #[test]
    fn luby_produces_valid_mis() {
        let mut rng = ChaCha8Rng::seed_from_u64(102);
        let gg = gen::forest_union(600, 3, &mut rng);
        let ids = IdAssignment::identity(600);
        for seed in 0..5 {
            let out = simlocal::Runner::new(&LubyMis, &gg.graph, &ids)
                .seed(seed)
                .run()
                .unwrap();
            verify::assert_ok(verify::maximal_independent_set(&gg.graph, &out.outputs));
        }
    }

    #[test]
    fn luby_on_clique_and_star() {
        let ids = IdAssignment::identity(30);
        let out = simlocal::Runner::new(&LubyMis, &gen::clique(30), &ids)
            .run()
            .unwrap();
        verify::assert_ok(verify::maximal_independent_set(
            &gen::clique(30),
            &out.outputs,
        ));
        assert_eq!(out.outputs.iter().filter(|&&b| b).count(), 1);
        let out = simlocal::Runner::new(&LubyMis, &gen::star(30), &ids)
            .run()
            .unwrap();
        verify::assert_ok(verify::maximal_independent_set(
            &gen::star(30),
            &out.outputs,
        ));
    }
}
