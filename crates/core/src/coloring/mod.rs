//! The vertex-coloring suite of §7 and §8.
pub mod a2_loglog;
pub mod a2logn;
pub mod delta_plus_one;
pub mod ka;
pub mod ka2;
pub mod oa_recolor;
