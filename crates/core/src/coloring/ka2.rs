//! §7.6 — `O(k a²)`-vertex-coloring in `O(log^(k) n)` vertex-averaged
//! rounds (Theorem 7.13); for `k = ρ(n)` this is `O(a² log* n)` colors in
//! `O(log* n)` vertex-averaged rounds (Corollaries 7.14/7.15).
//!
//! The segmentation scheme (§7.5) with: 𝒜 = the null algorithm, ℬ =
//! Procedure Parallelized-Forest-Decomposition's orientation (implicit —
//! parents are derivable from published join rounds), 𝒞 = the full
//! iterated Procedure Arb-Linial-Coloring on the segment's union, with a
//! disjoint palette copy per segment.
//!
//! Each segment's 𝒞 window opens once its partition window closes; a
//! vertex that joined H-set `h` in segment `s` idles until then, runs the
//! `O(log* n)` Linial steps against its parents *within the segment*, and
//! terminates. Segment `k` (holding all but an `O(1/log^(k-1) n)` fraction
//! of the vertices) closes after `O(log^(k) n + log* n)` rounds, which
//! dominates the vertex-averaged complexity.

use crate::inset::LinialSchedule;
use crate::partition::{degree_cap, partition_step};
use crate::segmentation::SegmentSchedule;
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition, WireSize};
use std::sync::OnceLock;

/// Per-vertex state.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum SKa2 {
    /// Running Procedure Partition.
    Active,
    /// Joined H-set `h`; waiting for the segment's 𝒞 window.
    Joined { h: u32 },
    /// Running the segment-wide iterated Linial coloring.
    Coloring { h: u32, color: u64 },
}

impl WireSize for SKa2 {
    fn wire_bits(&self) -> u64 {
        // 2-bit tag for three variants, then the payload.
        match self {
            SKa2::Active => 2,
            SKa2::Joined { h } => 2 + h.wire_bits(),
            SKa2::Coloring { h, color } => 2 + h.wire_bits() + color.wire_bits(),
        }
    }
}

/// The §7.6 protocol.
#[derive(Debug)]
pub struct ColoringKa2 {
    /// Known arboricity.
    pub arboricity: usize,
    /// Number of segments `k ∈ [2, ρ(n)]` (clamped by the schedule).
    pub k: u32,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    sched: OnceLock<(SegmentSchedule, LinialSchedule)>,
}

impl ColoringKa2 {
    /// Instance with `ε = 2`.
    pub fn new(arboricity: usize, k: u32) -> Self {
        ColoringKa2 {
            arboricity,
            k,
            epsilon: 2.0,
            sched: OnceLock::new(),
        }
    }

    /// The `k = ρ(n)` instance of Corollary 7.14 (maximum segmentation).
    pub fn rho_instance(arboricity: usize, n: u64) -> Self {
        Self::new(arboricity, crate::itlog::rho(n))
    }

    /// Degree threshold `A`.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    fn schedules(&self, n: u64, ids: &IdAssignment) -> &(SegmentSchedule, LinialSchedule) {
        self.sched.get_or_init(|| {
            (
                SegmentSchedule::new(n, self.k, self.epsilon),
                LinialSchedule::new(ids.id_space().max(2), self.cap() as u64),
            )
        })
    }

    /// Per-segment palette width α (the Linial fixpoint, `O(a²)`).
    pub fn alpha(&self, ids: &IdAssignment) -> u64 {
        LinialSchedule::new(ids.id_space().max(2), self.cap() as u64).final_palette()
    }

    /// Total palette bound: `k · α = O(k a²)`.
    pub fn palette(&self, n: u64, ids: &IdAssignment) -> u64 {
        let k = SegmentSchedule::new(n, self.k, self.epsilon).k();
        k as u64 * self.alpha(ids)
    }
}

impl Protocol for ColoringKa2 {
    type State = SKa2;
    type Msg = SKa2;
    type Output = u64;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> SKa2 {
        SKa2::Active
    }

    fn publish(&self, state: &SKa2) -> SKa2 {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, SKa2>) -> Transition<SKa2, u64> {
        let n = ctx.graph.n() as u64;
        let (segs, linial) = self.schedules(n, ctx.ids);
        match ctx.state.clone() {
            SKa2::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, SKa2::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(SKa2::Joined { h: ctx.round })
                } else {
                    Transition::Continue(SKa2::Active)
                }
            }
            SKa2::Joined { h } => {
                let start = segs.c_start(segs.segment_of(h), 0);
                if ctx.round < start {
                    return Transition::Continue(SKa2::Joined { h });
                }
                self.linial_step(&ctx, segs, linial, h, ctx.my_id(), ctx.round - start)
            }
            SKa2::Coloring { h, color } => {
                let start = segs.c_start(segs.segment_of(h), 0);
                self.linial_step(&ctx, segs, linial, h, color, ctx.round - start)
            }
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let n = g.n() as u64;
        SegmentSchedule::new(n, self.k, self.epsilon).total_partition_rounds()
            + LinialSchedule::new(n.max(2), self.cap() as u64).rounds()
            + 8
    }
}

impl ColoringKa2 {
    fn linial_step(
        &self,
        ctx: &StepCtx<'_, SKa2>,
        segs: &SegmentSchedule,
        linial: &LinialSchedule,
        h: u32,
        cur: u64,
        i: u32,
    ) -> Transition<SKa2, u64> {
        let seg = segs.segment_of(h);
        let encode = |c: u64| (seg as u64 - 1) * linial.final_palette().max(2) + c;
        if i >= linial.rounds() {
            // Degenerate schedule (tiny instance).
            return Transition::Terminate(SKa2::Coloring { h, color: cur }, encode(cur));
        }
        let my_id = ctx.my_id();
        // Parents within my segment: same-set neighbors with higher IDs
        // and neighbors in later sets of the same segment.
        let parents: Vec<u64> = ctx
            .view
            .neighbors()
            .filter_map(|(u, s)| {
                let (j, col) = match s {
                    SKa2::Active => return None,
                    SKa2::Joined { h: j } => (*j, ctx.ids.id(u)),
                    SKa2::Coloring { h: j, color } => (*j, *color),
                };
                let is_parent =
                    segs.segment_of(j) == seg && (j > h || (j == h && ctx.ids.id(u) > my_id));
                is_parent.then_some(col)
            })
            .collect();
        let next = linial.step(i, cur, &parents);
        if i + 1 == linial.rounds() {
            Transition::Terminate(SKa2::Coloring { h, color: next }, encode(next))
        } else {
            Transition::Continue(SKa2::Coloring { h, color: next })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_and_verify(g: &Graph, a: usize, k: u32) -> (f64, u32, usize) {
        let p = ColoringKa2::new(a, k);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            g,
            &out.outputs,
            p.palette(g.n() as u64, &ids) as usize,
        ));
        out.metrics.check_identities().unwrap();
        (
            out.metrics.vertex_averaged(),
            out.metrics.worst_case(),
            verify::count_distinct(&out.outputs),
        )
    }

    #[test]
    fn proper_for_small_families_all_k() {
        for k in [2u32, 3, 8] {
            run_and_verify(&gen::path(150), 1, k);
            run_and_verify(&gen::grid(12, 11), 2, k);
        }
    }

    #[test]
    fn proper_on_forest_unions() {
        let mut rng = ChaCha8Rng::seed_from_u64(60);
        for k in [2u32, 3] {
            for a in [2usize, 4] {
                let gg = gen::forest_union(900, a, &mut rng);
                run_and_verify(&gg.graph, a, k);
            }
        }
    }

    #[test]
    fn rho_instance_colors_properly() {
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let gg = gen::forest_union(4096, 2, &mut rng);
        let p = ColoringKa2::rho_instance(2, 4096);
        let ids = IdAssignment::identity(4096);
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            &gg.graph,
            &out.outputs,
            p.palette(4096, &ids) as usize,
        ));
    }

    #[test]
    fn larger_k_lower_vertex_average_more_colors() {
        // The §7.5 tradeoff: more segments ⇒ earlier retirement of the
        // bulk (lower VA) at the cost of more palette copies.
        let mut rng = ChaCha8Rng::seed_from_u64(62);
        let gg = gen::forest_union(1 << 14, 2, &mut rng);
        let (va2, _, _) = run_and_verify(&gg.graph, 2, 2);
        let (va4, _, _) = run_and_verify(&gg.graph, 2, 4);
        assert!(
            va4 <= va2,
            "k=4 should not be slower on average than k=2: {va4} vs {va2}"
        );
    }

    #[test]
    fn va_tracks_iterated_log_budget() {
        let mut rng = ChaCha8Rng::seed_from_u64(63);
        for n in [4096usize, 65536] {
            let gg = gen::forest_union(n, 2, &mut rng);
            let p = ColoringKa2::new(2, 2);
            let _ids = IdAssignment::identity(n);
            let (va, _, _) = run_and_verify(&gg.graph, 2, 2);
            // Budget: segment-k window + Linial rounds + slack.
            let budget = (crate::itlog::iterated_log(n as u64, 2)
                + LinialSchedule::new(n as u64, p.cap() as u64).rounds() as u64
                + 4) as f64;
            assert!(va <= budget, "n={n}: VA={va} > budget={budget}");
        }
    }

    #[test]
    fn palette_grows_linearly_in_k() {
        let ids = IdAssignment::identity(1 << 14);
        let p2 = ColoringKa2::new(2, 2).palette(1 << 14, &ids);
        let p3 = ColoringKa2::new(2, 3).palette(1 << 14, &ids);
        assert_eq!(p3 / 3, p2 / 2);
    }
}
