//! §7.3 — `O(a²)`-vertex-coloring in `O(log log n)` vertex-averaged rounds
//! (Theorem 7.6).
//!
//! Two phases:
//!
//! 1. Run Procedure Parallelized-Forest-Decomposition for
//!    `t = ⌊c'·log log n⌋` iterations, forming `H_1..H_t`; then run the
//!    full iterated Procedure Arb-Linial-Coloring (`O(log* n)` rounds) on
//!    the subgraph induced by their union, giving each member the color
//!    `⟨c, 1⟩`. All but `O(n / log n)` vertices live in this phase and
//!    terminate within `O(log log n + log* n)` rounds.
//! 2. The remaining vertices keep partitioning until every one has joined
//!    (round `L = O(log n)`), then run the same iterated coloring on the
//!    residual union with the disjoint palette `⟨c, 2⟩`.
//!
//! Phase-2 vertices pay `O(log n)` rounds, but there are only
//! `O(n / log n)` of them (Lemma 6.1), so the vertex-averaged complexity
//! is `O(log log n)` while the palette stays `O(a²)` — independent of `n`.
//!
//! Inside a phase union, a vertex's *conflict set* for the Linial steps is
//! its parents: same-set neighbors with higher IDs plus neighbors in later
//! sets of the same phase — at most `A` of them by the H-partition
//! property, which is exactly the cover-free budget.

use crate::inset::LinialSchedule;
use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition, WireSize};

/// Per-vertex state.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum S73 {
    /// Running Procedure Partition.
    Active,
    /// Joined H-set `h`; waiting for its phase's coloring window.
    Joined { h: u32 },
    /// In the coloring window with a current Linial color.
    Coloring { h: u32, color: u64 },
}

impl WireSize for S73 {
    fn wire_bits(&self) -> u64 {
        // 2-bit tag for three variants, then the payload.
        match self {
            S73::Active => 2,
            S73::Joined { h } => 2 + h.wire_bits(),
            S73::Coloring { h, color } => 2 + h.wire_bits() + color.wire_bits(),
        }
    }
}

/// The §7.3 protocol.
#[derive(Debug, Default)]
pub struct ColoringA2LogLog {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    /// Lazily computed Linial schedule (a pure function of the globally
    /// known ID space and `A`; cached so steps don't recompute it).
    sched: std::sync::OnceLock<LinialSchedule>,
}

impl ColoringA2LogLog {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize) -> Self {
        ColoringA2LogLog {
            arboricity,
            epsilon: 2.0,
            sched: std::sync::OnceLock::new(),
        }
    }

    /// Degree threshold `A`.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    /// `t = ⌊c'·log log n⌋` with `c' = 1/log₂((2+ε)/2)`, clamped ≥ 1
    /// (after `t` partition rounds at most `n / log n` vertices remain).
    pub fn phase1_sets(&self, n: u64) -> u32 {
        let c_prime = 1.0 / ((2.0 + self.epsilon) / 2.0).log2();
        let ll = itlog::iterated_log(n.max(4), 2) as f64;
        ((c_prime * ll).floor() as u32).max(1)
    }

    /// Full-partition round bound `L`.
    pub fn full_rounds(&self, n: u64) -> u32 {
        itlog::partition_round_bound(n, self.epsilon)
    }

    /// Shared Linial schedule (function of global knowledge only).
    pub fn schedule(&self, ids: &IdAssignment) -> &LinialSchedule {
        self.sched
            .get_or_init(|| LinialSchedule::new(ids.id_space().max(2), self.cap() as u64))
    }

    /// Palette bound: two phase copies of the Linial fixpoint.
    pub fn palette(&self, ids: &IdAssignment) -> u64 {
        2 * self.schedule(ids).final_palette()
    }

    /// Window start round of the phase containing H-set `h`.
    fn window_start(&self, n: u64, h: u32) -> u32 {
        let t = self.phase1_sets(n);
        if h <= t {
            t + 1
        } else {
            self.full_rounds(n).max(t) + 1
        }
    }

    /// Phase tag (1 or 2) of H-set `h`.
    fn phase_of(&self, n: u64, h: u32) -> u64 {
        if h <= self.phase1_sets(n) {
            0
        } else {
            1
        }
    }

    /// Encodes the pair ⟨c, phase⟩ into a single color value.
    fn encode(&self, c: u64, phase: u64) -> u64 {
        2 * c + phase
    }
}

/// The color a neighbor currently exposes for Linial purposes: its
/// published Linial color if it has started coloring, otherwise its ID
/// (the paper treats IDs as initial colors).
fn exposed_color(ids: &IdAssignment, u: VertexId, s: &S73) -> u64 {
    match s {
        S73::Coloring { color, .. } => *color,
        _ => ids.id(u),
    }
}

impl Protocol for ColoringA2LogLog {
    type State = S73;
    type Msg = S73;
    type Output = u64;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> S73 {
        S73::Active
    }

    fn publish(&self, state: &S73) -> S73 {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, S73>) -> Transition<S73, u64> {
        let n = ctx.graph.n() as u64;
        match ctx.state.clone() {
            S73::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, S73::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(S73::Joined { h: ctx.round })
                } else {
                    Transition::Continue(S73::Active)
                }
            }
            S73::Joined { h } => {
                let start = self.window_start(n, h);
                if ctx.round < start {
                    return Transition::Continue(S73::Joined { h });
                }
                // First Linial step (or immediate finish if the schedule
                // is empty for tiny inputs).
                self.coloring_step(&ctx, h, ctx.my_id(), ctx.round - start)
            }
            S73::Coloring { h, color } => {
                let start = self.window_start(n, h);
                self.coloring_step(&ctx, h, color, ctx.round - start)
            }
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let n = g.n() as u64;
        self.full_rounds(n).max(self.phase1_sets(n))
            + LinialSchedule::new(n.max(2), self.cap() as u64).rounds()
            + 8
    }
}

impl ColoringA2LogLog {
    /// Executes Linial step `i` of the window for a vertex in H-set `h`
    /// currently colored `cur`; terminates after the last step.
    fn coloring_step(
        &self,
        ctx: &StepCtx<'_, S73>,
        h: u32,
        cur: u64,
        i: u32,
    ) -> Transition<S73, u64> {
        let n = ctx.graph.n() as u64;
        let sched = self.schedule(ctx.ids);
        let phase = self.phase_of(n, h);
        if i >= sched.rounds() {
            // Empty schedule (tiny instance): the ID itself is the color.
            return Transition::Terminate(S73::Coloring { h, color: cur }, self.encode(cur, phase));
        }
        let t = self.phase1_sets(n);
        let in_my_phase = |j: u32| (j <= t) == (h <= t);
        let my_id = ctx.my_id();
        let parents: Vec<u64> = ctx
            .view
            .neighbors()
            .filter(|(u, s)| match s {
                S73::Active => false, // other phase still partitioning: not in my union
                S73::Joined { h: j } | S73::Coloring { h: j, .. } => {
                    in_my_phase(*j) && (*j > h || (*j == h && ctx.ids.id(*u) > my_id))
                }
            })
            .map(|(u, s)| exposed_color(ctx.ids, u, s))
            .collect();
        let next = sched.step(i, cur, &parents);
        if i + 1 == sched.rounds() {
            Transition::Terminate(S73::Coloring { h, color: next }, self.encode(next, phase))
        } else {
            Transition::Continue(S73::Coloring { h, color: next })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_and_verify(g: &Graph, a: usize) -> (f64, u32, usize) {
        let p = ColoringA2LogLog::new(a);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            g,
            &out.outputs,
            p.palette(&ids) as usize,
        ));
        out.metrics.check_identities().unwrap();
        let used = verify::count_distinct(&out.outputs);
        (
            out.metrics.vertex_averaged(),
            out.metrics.worst_case(),
            used,
        )
    }

    #[test]
    fn proper_on_small_families() {
        run_and_verify(&gen::path(100), 1);
        run_and_verify(&gen::cycle(99), 2);
        run_and_verify(&gen::grid(11, 9), 2);
    }

    #[test]
    fn proper_on_forest_unions() {
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        for k in [2usize, 4] {
            let gg = gen::forest_union(900, k, &mut rng);
            run_and_verify(&gg.graph, k);
        }
    }

    #[test]
    fn colors_independent_of_n_theorem_7_6() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let mut palettes = Vec::new();
        for n in [512usize, 4096, 16384] {
            let gg = gen::forest_union(n, 2, &mut rng);
            let (_, _, used) = run_and_verify(&gg.graph, 2);
            palettes.push(used);
        }
        // Used colors must not grow with n (O(a²) bound).
        assert!(
            palettes[2] <= palettes[0] * 2 + 8,
            "colors grew with n: {palettes:?}"
        );
    }

    #[test]
    fn vertex_averaged_loglog_shape() {
        // VA must stay near t + log* n, far below worst case (which is
        // Θ(log n) because of phase 2).
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for n in [1024usize, 8192] {
            let gg = gen::forest_union(n, 2, &mut rng);
            let p = ColoringA2LogLog::new(2);
            let (va, wc, _) = run_and_verify(&gg.graph, 2);
            let t = p.phase1_sets(n as u64);
            let ids = IdAssignment::identity(n);
            let budget = (t + p.schedule(&ids).rounds() + 2) as f64;
            assert!(
                va <= budget,
                "n={n}: VA={va} exceeds loglog budget {budget}"
            );
            assert!((wc as f64) >= va, "worst case must dominate the average");
        }
    }

    #[test]
    fn worst_case_tracks_full_partition() {
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let gg = gen::forest_union(4096, 2, &mut rng);
        let p = ColoringA2LogLog::new(2);
        let ids = IdAssignment::identity(4096);
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        // Phase-2 vertices terminate around L + log* n.
        let l = p.full_rounds(4096);
        assert!(out.metrics.worst_case() <= l + p.schedule(&ids).rounds() + 1);
    }

    #[test]
    fn phase_windows_ordered() {
        let p = ColoringA2LogLog::new(2);
        let n = 1 << 14;
        let t = p.phase1_sets(n);
        assert!(t >= 1);
        assert!(p.window_start(n, 1) == t + 1);
        assert!(p.window_start(n, t + 1) > p.window_start(n, t));
    }
}
