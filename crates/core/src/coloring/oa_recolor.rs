//! §7.4 — `O(a)`-vertex-coloring in `O(a log log n)` vertex-averaged
//! rounds (Theorem 7.9).
//!
//! Two phases split at `t = ⌊log log n⌋` H-sets:
//!
//! 1. Upon formation of each `H_i`, color `G(H_i)` with the in-set
//!    `(Δ+1)`-coloring (`Δ(G(H_i)) ≤ A`, so `A+1` colors) and orient
//!    in-set edges toward the higher color, cross-set edges toward the
//!    later set — an acyclic orientation of out-degree ≤ `A` and in-set
//!    length ≤ `A`. After the phase boundary, *recolor*: every vertex
//!    waits for all its parents (within the phase union) to pick, then
//!    takes the smallest color of `{0..A}` unused by its parents and
//!    outputs `⟨c, 1⟩`.
//! 2. The residual `O(n / log n)` vertices repeat the same with palette
//!    tag `⟨c, 2⟩` after the full partition finishes.
//!
//! Total palette `2(A+1) = O(a)`. The recoloring cascade is bounded by the
//! orientation length `O(a · log log n)` in phase 1 and `O(a · log n)` in
//! phase 2 — but phase 2 only holds `O(n / log n)` vertices, giving the
//! `O(a log log n)` vertex-averaged bound (plus the in-set coloring's
//! `O(a log a + log* n)`; see DESIGN.md on the substituted inner routine).

use crate::inset::DeltaPlusOneSchedule;
use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition, WireSize};
use std::sync::OnceLock;

/// Per-vertex state.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum S74 {
    /// Running Procedure Partition.
    Active,
    /// In H-set `h`, running the in-set coloring with current color `c`
    /// (IDs until the window opens).
    InSet { h: u32, c: u64 },
    /// Holds a final in-set color; waiting for the recolor window and for
    /// its parents to recolor.
    WaitRecolor { h: u32, local: u64 },
    /// Recolored (published so children can proceed).
    Done { h: u32, local: u64, rec: u64 },
}

impl WireSize for S74 {
    fn wire_bits(&self) -> u64 {
        // 2-bit tag for four variants, then the payload.
        match self {
            S74::Active => 2,
            S74::InSet { h, c } => 2 + h.wire_bits() + c.wire_bits(),
            S74::WaitRecolor { h, local } => 2 + h.wire_bits() + local.wire_bits(),
            S74::Done { h, local, rec } => 2 + h.wire_bits() + local.wire_bits() + rec.wire_bits(),
        }
    }
}

/// The §7.4 protocol.
#[derive(Debug, Default)]
pub struct ColoringOaRecolor {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    sched: OnceLock<DeltaPlusOneSchedule>,
}

impl ColoringOaRecolor {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize) -> Self {
        ColoringOaRecolor {
            arboricity,
            epsilon: 2.0,
            sched: OnceLock::new(),
        }
    }

    /// Degree threshold `A`.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    /// Phase-1 set count `t = ⌊log log n⌋`, clamped ≥ 1.
    pub fn phase1_sets(&self, n: u64) -> u32 {
        (itlog::iterated_log(n.max(4), 2) as u32).max(1)
    }

    /// Full partition bound `L`.
    pub fn full_rounds(&self, n: u64) -> u32 {
        itlog::partition_round_bound(n, self.epsilon)
    }

    /// In-set coloring schedule (global knowledge only).
    pub fn schedule(&self, ids: &IdAssignment) -> &DeltaPlusOneSchedule {
        self.sched
            .get_or_init(|| DeltaPlusOneSchedule::new(ids.id_space().max(2), self.cap() as u64))
    }

    /// Total palette: two phase copies of `A + 1` colors.
    pub fn palette(&self) -> u64 {
        2 * (self.cap() as u64 + 1)
    }

    /// Recolor-window start for the phase of H-set `h`.
    fn recolor_start(&self, n: u64, d: u32, h: u32) -> u32 {
        let t = self.phase1_sets(n);
        if h <= t {
            t + d + 1
        } else {
            self.full_rounds(n).max(t) + d + 1
        }
    }

    fn phase_bit(&self, n: u64, h: u32) -> u64 {
        u64::from(h > self.phase1_sets(n))
    }
}

impl Protocol for ColoringOaRecolor {
    type State = S74;
    type Msg = S74;
    type Output = u64;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> S74 {
        S74::Active
    }

    fn publish(&self, state: &S74) -> S74 {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, S74>) -> Transition<S74, u64> {
        let _n = ctx.graph.n() as u64;
        let sched = self.schedule(ctx.ids);
        let d = sched.rounds();
        match ctx.state.clone() {
            S74::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, S74::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(S74::InSet {
                        h: ctx.round,
                        c: ctx.my_id(),
                    })
                } else {
                    Transition::Continue(S74::Active)
                }
            }
            S74::InSet { h, c } => {
                // In-set (Δ+1)-coloring window is [h+1, h+d].
                let i = ctx.round - h - 1;
                if i >= d {
                    // Empty schedule (tiny instance): ID is already < A+1.
                    return self.wait_or_recolor(&ctx, h, sched.finish(c));
                }
                let peers: Vec<u64> = ctx
                    .view
                    .neighbors()
                    .filter_map(|(_, s)| match s {
                        S74::InSet { h: j, c } if *j == h => Some(*c),
                        _ => None,
                    })
                    .collect();
                let next = sched.step(i, c, &peers);
                if i + 1 == d {
                    Transition::Continue(S74::WaitRecolor {
                        h,
                        local: sched.finish(next),
                    })
                } else {
                    Transition::Continue(S74::InSet { h, c: next })
                }
            }
            S74::WaitRecolor { h, local } => self.wait_or_recolor(&ctx, h, local),
            S74::Done { .. } => unreachable!("Done is a terminal state"),
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let n = g.n() as u64;
        let d = DeltaPlusOneSchedule::new(n.max(2), self.cap() as u64).rounds();
        // Phase-2 recolor cascade is bounded by (A+1) per set across L sets.
        self.full_rounds(n) + d + (self.cap() as u32 + 1) * (self.full_rounds(n) + 1) + 16
    }
}

impl ColoringOaRecolor {
    /// Recolor attempt: if the window is open and every parent in the
    /// phase union has recolored, pick the smallest free color and finish.
    fn wait_or_recolor(
        &self,
        ctx: &StepCtx<'_, S74>,
        h: u32,
        my_local: u64,
    ) -> Transition<S74, u64> {
        let n = ctx.graph.n() as u64;
        let d = self.schedule(ctx.ids).rounds();
        let stay = S74::WaitRecolor { h, local: my_local };
        if ctx.round < self.recolor_start(n, d, h) {
            return Transition::Continue(stay);
        }
        let t = self.phase1_sets(n);
        let in_my_phase = |j: u32| (j <= t) == (h <= t);
        // Parents: same-set neighbors with a higher in-set color, or
        // same-phase neighbors in a later set. A parent that has not
        // recolored yet forces another waiting round; recolored parents'
        // colors are blocked.
        let mut used = vec![false; self.cap() + 1];
        for (_, s) in ctx.view.neighbors() {
            match s {
                // Other phase still partitioning — not in my union.
                S74::Active => {}
                S74::InSet { h: j, .. } => {
                    // Still coloring: a (potential) parent unless it is a
                    // same-set peer that cannot outrank an already-decided
                    // local color — be conservative and wait.
                    if in_my_phase(*j) && *j >= h {
                        return Transition::Continue(stay);
                    }
                }
                S74::WaitRecolor { h: j, local } => {
                    if in_my_phase(*j) && (*j > h || (*j == h && *local > my_local)) {
                        return Transition::Continue(stay);
                    }
                }
                S74::Done { h: j, local, rec } => {
                    if in_my_phase(*j) && (*j > h || (*j == h && *local > my_local)) {
                        used[*rec as usize] = true;
                    }
                }
            }
        }
        let rec = used
            .iter()
            .position(|&u| !u)
            .expect("A+1 palette vs ≤ A parents") as u64;
        let fin = rec * 2 + self.phase_bit(n, h);
        Transition::Terminate(
            S74::Done {
                h,
                local: my_local,
                rec,
            },
            fin,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_and_verify(g: &Graph, a: usize) -> (f64, u32, usize) {
        let p = ColoringOaRecolor::new(a);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            g,
            &out.outputs,
            p.palette() as usize,
        ));
        out.metrics.check_identities().unwrap();
        (
            out.metrics.vertex_averaged(),
            out.metrics.worst_case(),
            verify::count_distinct(&out.outputs),
        )
    }

    #[test]
    fn proper_on_small_families() {
        run_and_verify(&gen::path(120), 1);
        run_and_verify(&gen::cycle(121), 2);
        run_and_verify(&gen::grid(9, 14), 2);
        run_and_verify(&gen::binary_tree(127), 1);
    }

    #[test]
    fn proper_on_forest_unions() {
        let mut rng = ChaCha8Rng::seed_from_u64(50);
        for k in [2usize, 4] {
            let gg = gen::forest_union(800, k, &mut rng);
            run_and_verify(&gg.graph, k);
        }
    }

    #[test]
    fn palette_is_linear_in_a_theorem_7_9() {
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        for (k, n) in [(2usize, 2048usize), (4, 2048), (8, 4096)] {
            let gg = gen::forest_union(n, k, &mut rng);
            let p = ColoringOaRecolor::new(k);
            let (_, _, used) = run_and_verify(&gg.graph, k);
            assert!(used as u64 <= p.palette());
            // Linear in a: 2(⌊4a⌋+1).
            assert!(p.palette() <= 8 * k as u64 + 2);
        }
    }

    #[test]
    fn worst_case_minus_average_grows_with_n() {
        // The in-set coloring schedule is an additive term shared by VA
        // and WC; the separation the theorem claims is in the tails:
        // WC − VA ≈ L(n) − t(n) = Θ(log n) − Θ(log log n).
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        let g1 = gen::forest_union(1024, 2, &mut rng);
        let g2 = gen::forest_union(32768, 2, &mut rng);
        let (va1, wc1, _) = run_and_verify(&g1.graph, 2);
        let (va2, wc2, _) = run_and_verify(&g2.graph, 2);
        let gap1 = wc1 as f64 - va1;
        let gap2 = wc2 as f64 - va2;
        assert!(gap2 > gap1 + 2.0, "gap did not widen: {gap1} -> {gap2}");
    }

    #[test]
    fn va_scales_loglog_not_log() {
        // Between n=1k and n=64k, log n doubles+ but loglog/logstar barely
        // move: VA growth must stay under 65%.
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        let g1 = gen::forest_union(1024, 2, &mut rng);
        let g2 = gen::forest_union(65536, 2, &mut rng);
        let (va1, _, _) = run_and_verify(&g1.graph, 2);
        let (va2, _, _) = run_and_verify(&g2.graph, 2);
        assert!(va2 <= va1 * 1.65 + 2.0, "VA grew too fast: {va1} -> {va2}");
    }

    #[test]
    fn identity_vs_permuted_ids_both_proper() {
        let mut rng = ChaCha8Rng::seed_from_u64(54);
        let gg = gen::forest_union(500, 3, &mut rng);
        let ids = IdAssignment::random_permutation(500, &mut rng);
        let p = ColoringOaRecolor::new(3);
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            &gg.graph,
            &out.outputs,
            p.palette() as usize,
        ));
    }
}
