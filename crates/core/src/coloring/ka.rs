//! §7.7 — `O(k a)`-vertex-coloring in `O(a log^(k) n)` vertex-averaged
//! rounds (Theorem 7.16); for `k = ρ(n)` this gives `O(a log* n)` colors
//! in `O(a log* n)` vertex-averaged rounds (Corollary 7.17).
//!
//! The segmentation scheme with: 𝒜 = the in-set `(Δ+1)`-coloring
//! (`A + 1` colors since `Δ(G(H_j)) ≤ A`), ℬ = orient in-set edges toward
//! the higher 𝒜-color (acyclic, length ≤ `A` per set), 𝒞 = the
//! recoloring cascade over the segment: each vertex waits for all its
//! parents within the segment to recolor, then takes the smallest color of
//! the segment's `A + 1`-color palette unused by its parents.
//!
//! The cascade length in segment `s` is `O(a · log^(s) n)` (orientation
//! length `O(a)` per set times `O(log^(s) n)` sets), which with the decay
//! of Lemma 6.1 telescopes to the `O(a log^(k) n)` vertex-averaged bound.

use crate::inset::DeltaPlusOneSchedule;
use crate::partition::{degree_cap, partition_step};
use crate::segmentation::SegmentSchedule;
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition, WireSize};
use std::sync::OnceLock;

/// Per-vertex state.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum SKa {
    /// Running Procedure Partition.
    Active,
    /// In H-set `h`, running the in-set coloring (current color `c`).
    InSet { h: u32, c: u64 },
    /// Holding final in-set color `local`, waiting for the segment's
    /// recolor window and its parents.
    Wait { h: u32, local: u64 },
    /// Recolored (terminal, published for children).
    Done { h: u32, local: u64, rec: u64 },
}

impl WireSize for SKa {
    fn wire_bits(&self) -> u64 {
        // 2-bit tag for four variants, then the payload.
        match self {
            SKa::Active => 2,
            SKa::InSet { h, c } => 2 + h.wire_bits() + c.wire_bits(),
            SKa::Wait { h, local } => 2 + h.wire_bits() + local.wire_bits(),
            SKa::Done { h, local, rec } => 2 + h.wire_bits() + local.wire_bits() + rec.wire_bits(),
        }
    }
}

/// The §7.7 protocol.
#[derive(Debug)]
pub struct ColoringKa {
    /// Known arboricity.
    pub arboricity: usize,
    /// Number of segments `k ∈ [2, ρ(n)]`.
    pub k: u32,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    sched: OnceLock<(SegmentSchedule, DeltaPlusOneSchedule)>,
}

impl ColoringKa {
    /// Instance with `ε = 2`.
    pub fn new(arboricity: usize, k: u32) -> Self {
        ColoringKa {
            arboricity,
            k,
            epsilon: 2.0,
            sched: OnceLock::new(),
        }
    }

    /// The `k = ρ(n)` instance of Corollary 7.17.
    pub fn rho_instance(arboricity: usize, n: u64) -> Self {
        Self::new(arboricity, crate::itlog::rho(n))
    }

    /// Degree threshold `A`.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    fn schedules(&self, n: u64, ids: &IdAssignment) -> &(SegmentSchedule, DeltaPlusOneSchedule) {
        self.sched.get_or_init(|| {
            (
                SegmentSchedule::new(n, self.k, self.epsilon),
                DeltaPlusOneSchedule::new(ids.id_space().max(2), self.cap() as u64),
            )
        })
    }

    /// Total palette bound: `k · (A + 1) = O(k a)`.
    pub fn palette(&self, n: u64) -> u64 {
        let k = SegmentSchedule::new(n, self.k, self.epsilon).k();
        k as u64 * (self.cap() as u64 + 1)
    }
}

impl Protocol for ColoringKa {
    type State = SKa;
    type Msg = SKa;
    type Output = u64;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> SKa {
        SKa::Active
    }

    fn publish(&self, state: &SKa) -> SKa {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, SKa>) -> Transition<SKa, u64> {
        let n = ctx.graph.n() as u64;
        let (segs, inset) = self.schedules(n, ctx.ids);
        let d = inset.rounds();
        match ctx.state.clone() {
            SKa::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, SKa::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(SKa::InSet {
                        h: ctx.round,
                        c: ctx.my_id(),
                    })
                } else {
                    Transition::Continue(SKa::Active)
                }
            }
            SKa::InSet { h, c } => {
                let i = ctx.round - h - 1;
                if i >= d {
                    return self.wait_or_recolor(&ctx, segs, d, h, inset.finish(c));
                }
                let peers: Vec<u64> = ctx
                    .view
                    .neighbors()
                    .filter_map(|(_, s)| match s {
                        SKa::InSet { h: j, c } if *j == h => Some(*c),
                        _ => None,
                    })
                    .collect();
                let next = inset.step(i, c, &peers);
                if i + 1 == d {
                    Transition::Continue(SKa::Wait {
                        h,
                        local: inset.finish(next),
                    })
                } else {
                    Transition::Continue(SKa::InSet { h, c: next })
                }
            }
            SKa::Wait { h, local } => self.wait_or_recolor(&ctx, segs, d, h, local),
            SKa::Done { .. } => unreachable!("Done is terminal"),
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let n = g.n() as u64;
        let segs = SegmentSchedule::new(n, self.k, self.epsilon);
        let d = DeltaPlusOneSchedule::new(n.max(2), self.cap() as u64).rounds();
        segs.total_partition_rounds()
            + d
            + (self.cap() as u32 + 1) * (segs.total_partition_rounds() + 1)
            + 16
    }
}

impl ColoringKa {
    fn wait_or_recolor(
        &self,
        ctx: &StepCtx<'_, SKa>,
        segs: &SegmentSchedule,
        d: u32,
        h: u32,
        my_local: u64,
    ) -> Transition<SKa, u64> {
        let seg = segs.segment_of(h);
        let stay = SKa::Wait { h, local: my_local };
        if ctx.round < segs.c_start(seg, d) {
            return Transition::Continue(stay);
        }
        // Parents within the segment: same-set higher in-set color, or
        // later set of the same segment.
        let mut used = vec![false; self.cap() + 1];
        for (_, s) in ctx.view.neighbors() {
            match s {
                SKa::Active => {}
                SKa::InSet { h: j, .. } => {
                    if segs.segment_of(*j) == seg && *j >= h {
                        return Transition::Continue(stay);
                    }
                }
                SKa::Wait { h: j, local } => {
                    if segs.segment_of(*j) == seg && (*j > h || (*j == h && *local > my_local)) {
                        return Transition::Continue(stay);
                    }
                }
                SKa::Done { h: j, local, rec } => {
                    if segs.segment_of(*j) == seg && (*j > h || (*j == h && *local > my_local)) {
                        used[*rec as usize] = true;
                    }
                }
            }
        }
        let rec = used
            .iter()
            .position(|&u| !u)
            .expect("A+1 palette vs ≤ A parents") as u64;
        let fin = (seg as u64 - 1) * (self.cap() as u64 + 1) + rec;
        Transition::Terminate(
            SKa::Done {
                h,
                local: my_local,
                rec,
            },
            fin,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_and_verify(g: &Graph, a: usize, k: u32) -> (f64, u32, usize) {
        let p = ColoringKa::new(a, k);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            g,
            &out.outputs,
            p.palette(g.n() as u64) as usize,
        ));
        out.metrics.check_identities().unwrap();
        (
            out.metrics.vertex_averaged(),
            out.metrics.worst_case(),
            verify::count_distinct(&out.outputs),
        )
    }

    #[test]
    fn proper_for_small_families_all_k() {
        for k in [2u32, 3] {
            run_and_verify(&gen::path(150), 1, k);
            run_and_verify(&gen::cycle(151), 2, k);
            run_and_verify(&gen::grid(10, 13), 2, k);
        }
    }

    #[test]
    fn proper_on_forest_unions() {
        let mut rng = ChaCha8Rng::seed_from_u64(70);
        for a in [2usize, 4] {
            let gg = gen::forest_union(900, a, &mut rng);
            run_and_verify(&gg.graph, a, 2);
        }
    }

    #[test]
    fn rho_instance_proper() {
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let gg = gen::forest_union(4096, 2, &mut rng);
        let p = ColoringKa::rho_instance(2, 4096);
        let ids = IdAssignment::identity(4096);
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            &gg.graph,
            &out.outputs,
            p.palette(4096) as usize,
        ));
    }

    #[test]
    fn palette_linear_in_k_and_a() {
        assert_eq!(ColoringKa::new(2, 2).palette(1 << 14), 2 * 9);
        assert_eq!(ColoringKa::new(2, 3).palette(1 << 14), 3 * 9);
        assert_eq!(ColoringKa::new(4, 2).palette(1 << 14), 2 * 17);
    }

    #[test]
    fn fewer_colors_than_ka2_more_rounds() {
        // §7.7 trades palette (O(ka) vs O(ka²)) against cascade time.
        let mut rng = ChaCha8Rng::seed_from_u64(72);
        let gg = gen::forest_union(4096, 4, &mut rng);
        let ids = IdAssignment::identity(4096);
        let (_, _, used_ka) = run_and_verify(&gg.graph, 4, 2);
        let pk2 = crate::coloring::ka2::ColoringKa2::new(4, 2);
        let out = simlocal::Runner::new(&pk2, &gg.graph, &ids).run().unwrap();
        let used_ka2 = verify::count_distinct(&out.outputs);
        assert!(
            used_ka <= used_ka2,
            "O(ka) used {used_ka} colors, O(ka²) used {used_ka2}"
        );
    }

    #[test]
    fn va_flat_across_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(73);
        let g1 = gen::forest_union(1024, 2, &mut rng);
        let g2 = gen::forest_union(32768, 2, &mut rng);
        let (va1, _, _) = run_and_verify(&g1.graph, 2, 2);
        let (va2, _, _) = run_and_verify(&g2.graph, 2, 2);
        assert!(va2 <= va1 * 1.7 + 3.0, "VA grew too fast: {va1} -> {va2}");
    }
}
