//! §7.2 — `O(a² log n)`-vertex-coloring in `O(1)` vertex-averaged rounds
//! (Theorem 7.2).
//!
//! Procedure Parallelized-Forest-Decomposition runs underneath; the moment
//! an H-set forms, its vertices execute **one** round of Procedure
//! Arb-Linial-Coloring: vertex `v` picks a color from its cover-free set
//! `F_ID(v)` avoiding the sets of all its *parents* — same-set neighbors
//! with higher IDs and neighbors that have not joined yet. A later-joining
//! parent `u` then picks inside `F_ID(u)`, which `v` already avoided, so
//! the global coloring is proper (the induction of Theorem 7.2).
//!
//! Every vertex terminates one round after joining its H-set, so the
//! vertex-averaged complexity equals that of Procedure Partition plus one:
//! `O(1)`. The palette is the cover-free ground set — `O(A² log² n /
//! log² A)` with the polynomial construction (the paper's probabilistic
//! family gives `O(A² log n)`; see DESIGN.md substitutions).

use crate::coverfree::CoverFree;
use crate::forests::FState;
use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition};

/// The §7.2 protocol.
#[derive(Debug, Default)]
pub struct ColoringA2LogN {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    /// Cached cover-free family (pure function of global knowledge).
    fam: std::sync::OnceLock<CoverFree>,
}

impl ColoringA2LogN {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize) -> Self {
        ColoringA2LogN {
            arboricity,
            epsilon: 2.0,
            fam: std::sync::OnceLock::new(),
        }
    }

    /// Degree threshold `A`.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    /// The cover-free family every vertex derives from global knowledge.
    pub fn family(&self, ids: &IdAssignment) -> CoverFree {
        *self
            .fam
            .get_or_init(|| CoverFree::for_palette(ids.id_space().max(2), self.cap() as u64))
    }

    /// Number of colors this instance can use use (palette size).
    pub fn palette(&self, ids: &IdAssignment) -> u64 {
        self.family(ids).ground_size()
    }
}

impl Protocol for ColoringA2LogN {
    type State = FState;
    type Msg = FState;
    type Output = u64;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> FState {
        FState::Active
    }

    fn publish(&self, state: &FState) -> FState {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, FState>) -> Transition<FState, u64> {
        match *ctx.state {
            FState::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, FState::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(FState::Joined { h: ctx.round })
                } else {
                    Transition::Continue(FState::Active)
                }
            }
            FState::Joined { h } => {
                // One round of Procedure Arb-Linial-Coloring against the
                // IDs of the parents.
                let my_id = ctx.my_id();
                let parent_ids: Vec<u64> = ctx
                    .view
                    .neighbors()
                    .filter(|(u, s)| match s {
                        FState::Active => true,
                        FState::Joined { h: j } => *j == h && ctx.ids.id(*u) > my_id,
                    })
                    .map(|(u, _)| ctx.ids.id(u))
                    .collect();
                let fam = self.family(ctx.ids);
                let color = fam.reduce(my_id, &parent_ids);
                Transition::Terminate(FState::Joined { h }, color)
            }
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        itlog::partition_round_bound(g.n() as u64, self.epsilon) + 8
    }

    fn phase_names(&self) -> &'static [&'static str] {
        &["partition", "arb_linial"]
    }

    fn phase_of(&self, state: &FState) -> simlocal::PhaseId {
        match state {
            FState::Active => 0,
            FState::Joined { .. } => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use simlocal::Runner;

    fn run_and_verify(g: &Graph, a: usize) -> (f64, u32, u64) {
        let p = ColoringA2LogN::new(a);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            g,
            &out.outputs,
            p.palette(&ids) as usize,
        ));
        let used = verify::count_distinct(&out.outputs);
        (
            out.metrics.vertex_averaged(),
            out.metrics.worst_case(),
            used as u64,
        )
    }

    #[test]
    fn proper_on_structured_families() {
        run_and_verify(&gen::path(200), 1);
        run_and_verify(&gen::cycle(201), 2);
        run_and_verify(&gen::grid(15, 17), 2);
        run_and_verify(&gen::binary_tree(255), 1);
    }

    #[test]
    fn proper_on_forest_unions_and_ba() {
        let mut rng = ChaCha8Rng::seed_from_u64(30);
        for k in [2usize, 5] {
            let gg = gen::forest_union(700, k, &mut rng);
            run_and_verify(&gg.graph, gg.arboricity);
        }
        let ba = gen::preferential_attachment(600, 3, &mut rng);
        run_and_verify(&ba.graph, ba.arboricity);
    }

    #[test]
    fn vertex_averaged_constant_theorem_7_2() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut vas = Vec::new();
        for n in [512usize, 2048, 8192] {
            let gg = gen::forest_union(n, 2, &mut rng);
            let (va, wc, _) = run_and_verify(&gg.graph, 2);
            assert!(va <= 3.0, "n={n}: VA={va}");
            assert!(wc >= 2);
            vas.push(va);
        }
        // VA does not grow with n (flat within noise).
        assert!(vas[2] <= vas[0] + 0.5);
    }

    #[test]
    fn random_ids_still_proper() {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let gg = gen::forest_union(400, 3, &mut rng);
        let ids = IdAssignment::random_sparse(400, 1 << 20, &mut rng);
        let p = ColoringA2LogN::new(3);
        let out = Runner::new(&p, &gg.graph, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            &gg.graph,
            &out.outputs,
            p.palette(&ids) as usize,
        ));
    }

    #[test]
    fn color_count_scales_with_a_squared_not_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let small = gen::forest_union(512, 2, &mut rng);
        let big = gen::forest_union(8192, 2, &mut rng);
        let ps = ColoringA2LogN::new(2).palette(&IdAssignment::identity(512));
        let pb = ColoringA2LogN::new(2).palette(&IdAssignment::identity(8192));
        // Palette grows polylogarithmically in n (log² factor), far below
        // linear growth.
        assert!(pb < ps * 8, "palette jumped {ps} -> {pb} for 16x n");
        run_and_verify(&small.graph, 2);
        run_and_verify(&big.graph, 2);
    }

    #[test]
    fn parallel_engine_identical() {
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let gg = gen::forest_union(1000, 2, &mut rng);
        let ids = IdAssignment::identity(1000);
        let p = ColoringA2LogN::new(2);
        let a = Runner::new(&p, &gg.graph, &ids).run().unwrap();
        let b = Runner::new(&p, &gg.graph, &ids).parallel().run().unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics, b.metrics);
    }
}
