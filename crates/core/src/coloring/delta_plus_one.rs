//! Corollary 8.3 — `(Δ+1)`-vertex-coloring whose vertex-averaged
//! complexity depends on the arboricity, not on Δ.
//!
//! The extension framework (§8) instantiated with 𝒜 = a
//! `(deg+1)`-list-coloring inside each H-set: every vertex starts with the
//! list `{0..Δ}`; colors taken by already-decided neighbors (earlier sets,
//! or earlier slots of the same set) are crossed off. Inside `G(H_i)` the
//! degree is at most `A = O(a)`, so the in-set solver runs in
//! `O(poly(a) + log* n)` rounds: an in-set `(A+1)`-coloring (iterated
//! Linial + KW) provides a slot order, then `A + 1` greedy slots pick
//! final colors. A free color always exists because a vertex has at most
//! `deg(v) ≤ Δ` decided neighbors and `Δ + 1` list entries — the
//! "extension from any partial solution" property of vertex coloring.
//!
//! The paper plugs in the `O(√Δ log^2.5 Δ + log* n)` algorithm of \[13\];
//! our in-set solver is `O(a log a + a + log* n)` — both depend on `a`
//! only once Procedure Partition has capped the degree, which is the
//! claim under test (see DESIGN.md substitutions).

use crate::extension::IterationSchedule;
use crate::inset::DeltaPlusOneSchedule;
use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition, WireSize};
use std::sync::OnceLock;

/// Per-vertex state.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum SDp1 {
    /// Running Procedure Partition.
    Active,
    /// Joined H-set `h`; waiting for the iteration window.
    Joined { h: u32 },
    /// Running the in-set slot-order coloring.
    InSet { h: u32, c: u64 },
    /// Holding slot color `slot`, waiting for its greedy slot.
    Await { h: u32, slot: u64 },
    /// Final color fixed (terminal, published).
    Fin { h: u32, color: u64 },
}

/// Wire message for [`DeltaPlusOneColoring`]. An `Await` vertex's slot
/// and H-index are private while it holds for its greedy slot, and a
/// finished vertex only shows its color — neighbors never need the
/// H-index of a decided vertex.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // mirrors the `SDp1` conventions above
pub enum Dp1Msg {
    Active,
    Joined { h: u32 },
    InSet { h: u32, c: u64 },
    Await,
    Fin { color: u64 },
}

impl WireSize for Dp1Msg {
    fn wire_bits(&self) -> u64 {
        // 3-bit tag for five variants, then the payload.
        match self {
            Dp1Msg::Active | Dp1Msg::Await => 3,
            Dp1Msg::Joined { h } => 3 + h.wire_bits(),
            Dp1Msg::InSet { h, c } => 3 + h.wire_bits() + c.wire_bits(),
            Dp1Msg::Fin { color } => 3 + color.wire_bits(),
        }
    }
}

/// The Corollary 8.3 protocol.
#[derive(Debug)]
pub struct DeltaPlusOneColoring {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    sched: OnceLock<(DeltaPlusOneSchedule, IterationSchedule)>,
}

impl DeltaPlusOneColoring {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize) -> Self {
        DeltaPlusOneColoring {
            arboricity,
            epsilon: 2.0,
            sched: OnceLock::new(),
        }
    }

    /// Degree threshold `A`.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    fn schedules(&self, ids: &IdAssignment) -> &(DeltaPlusOneSchedule, IterationSchedule) {
        self.sched.get_or_init(|| {
            let inset = DeltaPlusOneSchedule::new(ids.id_space().max(2), self.cap() as u64);
            let dur = inset.rounds() + self.cap() as u32 + 1;
            (inset, IterationSchedule::new(dur))
        })
    }
}

impl Protocol for DeltaPlusOneColoring {
    type State = SDp1;
    type Msg = Dp1Msg;
    type Output = u64;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> SDp1 {
        SDp1::Active
    }

    fn publish(&self, state: &SDp1) -> Dp1Msg {
        match state {
            SDp1::Active => Dp1Msg::Active,
            SDp1::Joined { h } => Dp1Msg::Joined { h: *h },
            SDp1::InSet { h, c } => Dp1Msg::InSet { h: *h, c: *c },
            SDp1::Await { .. } => Dp1Msg::Await,
            SDp1::Fin { color, .. } => Dp1Msg::Fin { color: *color },
        }
    }

    fn step(&self, ctx: StepCtx<'_, SDp1, Dp1Msg>) -> Transition<SDp1, u64> {
        let (inset, iters) = self.schedules(ctx.ids);
        let d = inset.rounds();
        match ctx.state.clone() {
            SDp1::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, Dp1Msg::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(SDp1::Joined { h: ctx.round })
                } else {
                    Transition::Continue(SDp1::Active)
                }
            }
            SDp1::Joined { h } => match iters.local_round(h, ctx.round) {
                None => Transition::Continue(SDp1::Joined { h }),
                Some(_) => self.inset_step(&ctx, h, ctx.my_id(), 0, d),
            },
            SDp1::InSet { h, c } => {
                let i = iters
                    .local_round(h, ctx.round)
                    .expect("window already open");
                self.inset_step(&ctx, h, c, i, d)
            }
            SDp1::Await { h, slot } => {
                let i = iters
                    .local_round(h, ctx.round)
                    .expect("window already open");
                self.slot_step(&ctx, h, slot, i - d)
            }
            SDp1::Fin { .. } => unreachable!("terminal"),
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let n = g.n() as u64;
        let inset = DeltaPlusOneSchedule::new(n.max(2), self.cap() as u64);
        let dur = inset.rounds() + self.cap() as u32 + 1;
        IterationSchedule::new(dur).window_end(itlog::partition_round_bound(n, self.epsilon)) + 8
    }
}

impl DeltaPlusOneColoring {
    /// In-set slot-order coloring step `i ∈ 0..d`.
    fn inset_step(
        &self,
        ctx: &StepCtx<'_, SDp1, Dp1Msg>,
        h: u32,
        cur: u64,
        i: u32,
        d: u32,
    ) -> Transition<SDp1, u64> {
        let (inset, _) = self.schedules(ctx.ids);
        if i >= d {
            // Degenerate tiny-instance schedule.
            return self.slot_step(ctx, h, inset.finish(cur), i - d);
        }
        let peers: Vec<u64> = ctx
            .view
            .neighbors()
            .filter_map(|(u, s)| match s {
                Dp1Msg::InSet { h: j, c } if *j == h => Some(*c),
                // Peers entering the window this round still expose their
                // IDs as their initial colors.
                Dp1Msg::Joined { h: j } if *j == h => Some(ctx.ids.id(u)),
                _ => None,
            })
            .collect();
        let next = inset.step(i, cur, &peers);
        if i + 1 == d {
            Transition::Continue(SDp1::Await {
                h,
                slot: inset.finish(next),
            })
        } else {
            Transition::Continue(SDp1::InSet { h, c: next })
        }
    }

    /// Greedy slot step: when `slot_round` reaches my slot index, pick the
    /// smallest color of `{0..Δ}` unused by any decided neighbor.
    fn slot_step(
        &self,
        ctx: &StepCtx<'_, SDp1, Dp1Msg>,
        h: u32,
        slot: u64,
        slot_round: u32,
    ) -> Transition<SDp1, u64> {
        if (slot_round as u64) < slot {
            return Transition::Continue(SDp1::Await { h, slot });
        }
        let delta = ctx.graph.max_degree() as u64;
        let mut used = vec![false; delta as usize + 1];
        for (_, s) in ctx.view.neighbors() {
            if let Dp1Msg::Fin { color } = s {
                used[*color as usize] = true;
            }
        }
        let color = used
            .iter()
            .position(|&u| !u)
            .expect("Δ+1 list vs ≤ Δ neighbors") as u64;
        Transition::Terminate(SDp1::Fin { h, color }, color)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_and_verify(g: &Graph, a: usize) -> (f64, u32) {
        let p = DeltaPlusOneColoring::new(a);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            g,
            &out.outputs,
            g.max_degree() + 1,
        ));
        out.metrics.check_identities().unwrap();
        (out.metrics.vertex_averaged(), out.metrics.worst_case())
    }

    #[test]
    fn proper_with_delta_plus_one_colors() {
        run_and_verify(&gen::path(100), 1);
        run_and_verify(&gen::cycle(101), 2);
        run_and_verify(&gen::grid(8, 13), 2);
        run_and_verify(&gen::star(50), 1);
    }

    #[test]
    fn proper_on_forest_unions_and_hubs() {
        let mut rng = ChaCha8Rng::seed_from_u64(90);
        for a in [2usize, 4] {
            let gg = gen::forest_union(600, a, &mut rng);
            run_and_verify(&gg.graph, a);
        }
        // The a ≪ Δ separation workload.
        let hub = gen::hub_forest(1200, 2, 3, 50, &mut rng);
        run_and_verify(&hub.graph, hub.arboricity);
    }

    #[test]
    fn uses_exactly_delta_plus_one_palette_on_star() {
        // Star: Δ = n−1 but a = 1; the center must still get a legal color.
        let g = gen::star(30);
        let p = DeltaPlusOneColoring::new(1);
        let ids = IdAssignment::identity(30);
        let out = simlocal::Runner::new(&p, &g, &ids).run().unwrap();
        assert!(out.outputs.iter().all(|&c| c <= 29));
        verify::assert_ok(verify::proper_vertex_coloring(&g, &out.outputs, 30));
    }

    #[test]
    fn va_depends_on_a_not_delta() {
        // Two graphs with the same arboricity but wildly different Δ must
        // have similar vertex-averaged complexity.
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let flat = gen::forest_union(2000, 2, &mut rng);
        let spiky = gen::hub_forest(2000, 1, 4, 120, &mut rng); // a ≤ 2, Δ ≥ 120
        let (va_flat, _) = run_and_verify(&flat.graph, 2);
        let (va_spiky, _) = run_and_verify(&spiky.graph, 2);
        assert!(
            va_spiky <= va_flat * 2.0 + 10.0,
            "VA should not blow up with Δ: flat={va_flat}, spiky={va_spiky}"
        );
    }

    #[test]
    fn deterministic_across_engines() {
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let gg = gen::forest_union(500, 2, &mut rng);
        let ids = IdAssignment::identity(500);
        let p = DeltaPlusOneColoring::new(2);
        let a = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        let b = simlocal::Runner::new(&p, &gg.graph, &ids)
            .parallel()
            .run()
            .unwrap();
        assert_eq!(a.outputs, b.outputs);
    }
}
