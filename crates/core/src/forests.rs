//! Forest decompositions (§7.1).
//!
//! **Procedure Parallelized-Forest-Decomposition** (Theorem 7.1): run
//! Procedure Partition; *immediately* upon joining an H-set a vertex
//! orients its incident edges (same-set edges toward the higher ID,
//! edges to not-yet-joined neighbors toward them) and labels its out-edges
//! with distinct labels — one extra round after joining, so the
//! vertex-averaged complexity stays `O(1)` while the output is a valid
//! partition of `E` into `A = ⌊(2+ε)a⌋` oriented forests.
//!
//! **Procedure Forest-Decomposition** (\[8\]; the baseline): identical
//! output, but the orientation/labeling step happens only after the whole
//! partition has finished — every vertex stays busy for the full
//! `O(log n)` worst-case schedule, which is what the paper's "previous
//! running time" column measures.
//!
//! In the state-read LOCAL model a vertex cannot see *simultaneous*
//! joiners during the join round itself, so joining is a two-step
//! handshake: publish the join mark in round `i`, read same-round marks
//! and emit the orientation in round `i+1`. This shifts every termination
//! round by exactly +1 and changes no asymptotics.

use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition, WireSize};

/// Per-vertex state during forest decomposition — entirely
/// neighbor-visible, so it doubles as the wire message.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum FState {
    /// Still running Procedure Partition.
    Active,
    /// Joined H-set `h` (published so neighbors can exclude this vertex
    /// from their active counts and learn set membership).
    Joined { h: u32 },
}

impl WireSize for FState {
    fn wire_bits(&self) -> u64 {
        match self {
            FState::Active => 1,
            FState::Joined { h } => 1 + h.wire_bits(),
        }
    }
}

/// Per-vertex output: the H-index plus this vertex's outgoing edges with
/// their forest labels (labels are `0..out_degree`, globally `< A`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForestOut {
    /// H-set index (1-based) — equals the join round.
    pub h_index: u32,
    /// `(neighbor, forest label)` for each edge oriented out of this
    /// vertex.
    pub out_edges: Vec<(VertexId, u32)>,
}

/// Decides the out-edges of a vertex `v` that joined H-set `h`, given its
/// neighbors' published states. Shared by the parallelized and the
/// baseline protocol (and by every protocol embedding a forest
/// decomposition).
///
/// Out-edges go to: same-set neighbors with a higher ID, and neighbors
/// that have not joined any set yet (they will join a later one). Labels
/// are assigned in neighbor order.
pub fn decide_out_edges<S, M>(
    ctx: &StepCtx<'_, S, M>,
    h: u32,
    set_of: impl Fn(&M) -> Option<u32>,
) -> Vec<(VertexId, u32)> {
    let my_id = ctx.my_id();
    let mut out = Vec::new();
    for (u, s) in ctx.view.neighbors() {
        let outgoing = match set_of(s) {
            Some(j) if j == h => ctx.ids.id(u) > my_id, // same set: toward higher ID
            Some(j) => j > h,                           // cross-set edges point at the later set
            None => true, // still active -> will join a later set -> toward u
        };
        if outgoing {
            let label = out.len() as u32;
            out.push((u, label));
        }
    }
    out
}

/// Procedure Parallelized-Forest-Decomposition (Theorem 7.1).
#[derive(Clone, Copy, Debug)]
pub struct ParallelizedForestDecomposition {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
}

impl ParallelizedForestDecomposition {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize) -> Self {
        ParallelizedForestDecomposition {
            arboricity,
            epsilon: 2.0,
        }
    }

    /// Threshold `A` = number of forests produced.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }
}

impl Protocol for ParallelizedForestDecomposition {
    type State = FState;
    type Msg = FState;
    type Output = ForestOut;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> FState {
        FState::Active
    }

    fn publish(&self, state: &FState) -> FState {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, FState>) -> Transition<FState, ForestOut> {
        match *ctx.state {
            FState::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, FState::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(FState::Joined { h: ctx.round })
                } else {
                    Transition::Continue(FState::Active)
                }
            }
            FState::Joined { h } => {
                // Round h+1: read same-round joiners, orient and label.
                let out = decide_out_edges(&ctx, h, |s| match s {
                    FState::Active => None,
                    FState::Joined { h } => Some(*h),
                });
                Transition::Terminate(
                    FState::Joined { h },
                    ForestOut {
                        h_index: h,
                        out_edges: out,
                    },
                )
            }
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        itlog::partition_round_bound(g.n() as u64, self.epsilon) + 8
    }

    fn phase_names(&self) -> &'static [&'static str] {
        &["partition", "orient"]
    }

    fn phase_of(&self, state: &FState) -> simlocal::PhaseId {
        match state {
            FState::Active => 0,
            FState::Joined { .. } => 1,
        }
    }
}

/// Procedure Forest-Decomposition of \[8\] — the worst-case baseline. Same
/// output, but no vertex terminates before the full partition schedule
/// `L(n, ε)` has elapsed; orientation and labeling happen in round
/// `L + 1` for everyone.
#[derive(Clone, Copy, Debug)]
pub struct ForestDecompositionBaseline {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
}

impl ForestDecompositionBaseline {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize) -> Self {
        ForestDecompositionBaseline {
            arboricity,
            epsilon: 2.0,
        }
    }

    fn schedule_end(&self, g: &Graph) -> u32 {
        itlog::partition_round_bound(g.n() as u64, self.epsilon)
    }
}

impl Protocol for ForestDecompositionBaseline {
    type State = FState;
    type Msg = FState;
    type Output = ForestOut;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> FState {
        FState::Active
    }

    fn publish(&self, state: &FState) -> FState {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, FState>) -> Transition<FState, ForestOut> {
        let next = match ctx.state.clone() {
            FState::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, FState::Active))
                    .count();
                if partition_step(active, degree_cap(self.arboricity, self.epsilon)) {
                    FState::Joined { h: ctx.round }
                } else {
                    FState::Active
                }
            }
            s @ FState::Joined { .. } => s,
        };
        // Everyone waits out the full worst-case schedule, then orients.
        if ctx.round > self.schedule_end(ctx.graph) {
            let h = match next {
                FState::Joined { h } => h,
                FState::Active => unreachable!("partition must finish within L(n, ε)"),
            };
            let out = decide_out_edges(&ctx, h, |s| match s {
                FState::Active => None,
                FState::Joined { h } => Some(*h),
            });
            Transition::Terminate(
                next,
                ForestOut {
                    h_index: h,
                    out_edges: out,
                },
            )
        } else {
            Transition::Continue(next)
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        self.schedule_end(g) + 8
    }
}

/// Assembles per-vertex [`ForestOut`]s into per-edge `(labels, heads)`
/// arrays for [`graphcore::verify::forest_decomposition`]. Returns an
/// error if some edge is claimed by both or neither endpoint.
pub fn assemble(
    g: &Graph,
    outs: &[ForestOut],
) -> Result<(Vec<u32>, Vec<Option<VertexId>>), String> {
    let mut labels = vec![u32::MAX; g.m()];
    let mut heads: Vec<Option<VertexId>> = vec![None; g.m()];
    for v in g.vertices() {
        for &(u, label) in &outs[v as usize].out_edges {
            let e = g
                .edge_between(v, u)
                .ok_or_else(|| format!("vertex {v} claims non-edge ({v},{u})"))?;
            if heads[e as usize].is_some() {
                return Err(format!("edge {e} oriented by both endpoints"));
            }
            heads[e as usize] = Some(u);
            labels[e as usize] = label;
        }
    }
    for (e, _) in g.edges() {
        if heads[e as usize].is_none() {
            return Err(format!("edge {e} oriented by neither endpoint"));
        }
    }
    Ok((labels, heads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_decomposition(g: &Graph, a: usize) -> (f64, u32) {
        let p = ParallelizedForestDecomposition::new(a);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).run().unwrap();
        let (labels, heads) = assemble(g, &out.outputs).unwrap();
        verify::assert_ok(verify::forest_decomposition(g, &labels, &heads, p.cap()));
        // H-partition property as well.
        let h: Vec<u32> = out.outputs.iter().map(|o| o.h_index).collect();
        verify::assert_ok(verify::h_partition(g, &h, p.cap()));
        (out.metrics.vertex_averaged(), out.metrics.worst_case())
    }

    #[test]
    fn valid_on_trees_grids_forest_unions() {
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        check_decomposition(&gen::random_tree(300, &mut rng).graph, 1);
        check_decomposition(&gen::grid(17, 13), 2);
        for k in [2usize, 4] {
            let gg = gen::forest_union(600, k, &mut rng);
            check_decomposition(&gg.graph, k);
        }
    }

    #[test]
    fn vertex_averaged_constant_theorem_7_1() {
        // VA ≤ 1 + Σ decay = O(1): with ε = 2 the bound is 3 (join +1).
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for n in [512usize, 2048, 8192] {
            let gg = gen::forest_union(n, 2, &mut rng);
            let (va, _) = check_decomposition(&gg.graph, 2);
            assert!(va <= 3.0, "n={n}: VA={va} not O(1)");
        }
    }

    #[test]
    fn baseline_pays_worst_case_everywhere() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let gg = gen::forest_union(1024, 2, &mut rng);
        let ids = IdAssignment::identity(gg.graph.n());
        let base = ForestDecompositionBaseline::new(2);
        let out = simlocal::Runner::new(&base, &gg.graph, &ids).run().unwrap();
        let l = itlog::partition_round_bound(1024, 2.0);
        assert!(out.metrics.worst_case() == l + 1);
        // Every vertex pays the full schedule: VA == worst case.
        assert_eq!(out.metrics.vertex_averaged(), (l + 1) as f64);
        // Output is still a valid decomposition.
        let (labels, heads) = assemble(&gg.graph, &out.outputs).unwrap();
        verify::assert_ok(verify::forest_decomposition(
            &gg.graph,
            &labels,
            &heads,
            degree_cap(2, 2.0),
        ));
    }

    #[test]
    fn parallelized_beats_baseline_on_average() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let gg = gen::forest_union(4096, 3, &mut rng);
        let ids = IdAssignment::identity(gg.graph.n());
        let fast = simlocal::Runner::new(&ParallelizedForestDecomposition::new(3), &gg.graph, &ids)
            .run()
            .unwrap();
        let slow = simlocal::Runner::new(&ForestDecompositionBaseline::new(3), &gg.graph, &ids)
            .run()
            .unwrap();
        assert!(fast.metrics.vertex_averaged() * 3.0 < slow.metrics.vertex_averaged());
        // Same H-indices, hence same orientation.
        let fh: Vec<u32> = fast.outputs.iter().map(|o| o.h_index).collect();
        let sh: Vec<u32> = slow.outputs.iter().map(|o| o.h_index).collect();
        assert_eq!(fh, sh);
    }

    #[test]
    fn labels_within_out_degree() {
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let gg = gen::forest_union(400, 2, &mut rng);
        let p = ParallelizedForestDecomposition::new(2);
        let ids = IdAssignment::identity(gg.graph.n());
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        for o in &out.outputs {
            assert!(o.out_edges.len() <= p.cap());
            for (i, &(_, label)) in o.out_edges.iter().enumerate() {
                assert_eq!(label as usize, i);
            }
        }
    }

    #[test]
    fn assemble_rejects_incomplete() {
        let g = gen::path(3);
        let outs = vec![
            ForestOut {
                h_index: 1,
                out_edges: vec![(1, 0)],
            },
            ForestOut {
                h_index: 1,
                out_edges: vec![],
            }, // edge (1,2) unclaimed
            ForestOut {
                h_index: 1,
                out_edges: vec![],
            },
        ];
        assert!(assemble(&g, &outs).is_err());
    }
}
