//! §7.8's Procedures Partial-Orientation and Arbdefective-Coloring
//! (Algorithms 1–2 of the paper), standalone.
//!
//! A `b`-arbdefective `c`-coloring assigns one of `c` colors to every
//! vertex such that each color class induces a subgraph of arboricity at
//! most `b`. The paper's recipe: H-partition the graph, color each
//! `G(H_i)` (the paper uses an `⌊a/t⌋`-defective `O(t²)`-coloring; we use
//! the *proper* in-set `(A+1)`-coloring — 0-defective, hence strictly
//! stronger, see DESIGN.md), orient every edge toward the higher
//! (set, color) pair — Procedure Partial-Orientation, here a *total*
//! acyclic orientation of out-degree ≤ `A` — and then have each vertex
//! wait for its parents and take the group least used among them
//! (Procedure Arbdefective-Coloring). With `k` groups, the per-group
//! out-degree is ≤ `⌊A/k⌋`, so each group's arboricity is ≤ `⌊A/k⌋`.
//!
//! This is the splitting engine of Procedure One-Plus-Eta-Arb-Col
//! ([`crate::one_plus_eta`] embeds a level-windowed copy); the standalone
//! protocol is exposed for direct use and direct testing against
//! [`graphcore::verify::arbdefective_coloring`].

use crate::inset::DeltaPlusOneSchedule;
use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition, WireSize};
use std::sync::OnceLock;

/// Per-vertex state.
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `g` the chosen
/// group.
#[allow(missing_docs)]
#[derive(Clone, Debug)]
pub enum SArbDef {
    /// Running Procedure Partition.
    Active,
    /// In H-set `h`, running the in-set coloring.
    InSet { h: u32, c: u64 },
    /// Waiting for parents to pick groups.
    Wait { h: u32, local: u64 },
    /// Picked group `g` (terminal).
    Done { h: u32, local: u64, g: u32 },
}

impl WireSize for SArbDef {
    fn wire_bits(&self) -> u64 {
        // 2-bit tag for four variants, then the payload.
        match self {
            SArbDef::Active => 2,
            SArbDef::InSet { h, c } => 2 + h.wire_bits() + c.wire_bits(),
            SArbDef::Wait { h, local } => 2 + h.wire_bits() + local.wire_bits(),
            SArbDef::Done { h, local, g } => 2 + h.wire_bits() + local.wire_bits() + g.wire_bits(),
        }
    }
}

/// Procedure Arbdefective-Coloring: splits the graph into `k` groups of
/// arboricity ≤ `⌊A/k⌋` each.
#[derive(Debug)]
pub struct ArbdefectiveColoring {
    /// Known arboricity.
    pub arboricity: usize,
    /// Number of groups (the paper's `k`).
    pub k: u32,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    sched: OnceLock<DeltaPlusOneSchedule>,
}

impl ArbdefectiveColoring {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize, k: u32) -> Self {
        assert!(k >= 1);
        ArbdefectiveColoring {
            arboricity,
            k,
            epsilon: 2.0,
            sched: OnceLock::new(),
        }
    }

    /// Degree threshold `A` — the orientation's out-degree bound.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    /// Arbdefect guarantee: every group has arboricity ≤ `⌊A/k⌋`.
    pub fn arbdefect(&self) -> usize {
        self.cap() / self.k as usize
    }

    fn schedule(&self, ids: &IdAssignment) -> &DeltaPlusOneSchedule {
        self.sched
            .get_or_init(|| DeltaPlusOneSchedule::new(ids.id_space().max(2), self.cap() as u64))
    }
}

impl Protocol for ArbdefectiveColoring {
    type State = SArbDef;
    type Msg = SArbDef;
    type Output = u32;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> SArbDef {
        SArbDef::Active
    }

    fn publish(&self, state: &SArbDef) -> SArbDef {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, SArbDef>) -> Transition<SArbDef, u32> {
        let sched = self.schedule(ctx.ids);
        let d = sched.rounds();
        match ctx.state.clone() {
            SArbDef::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, SArbDef::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(SArbDef::InSet {
                        h: ctx.round,
                        c: ctx.my_id(),
                    })
                } else {
                    Transition::Continue(SArbDef::Active)
                }
            }
            SArbDef::InSet { h, c } => {
                let i = ctx.round - h - 1;
                if i >= d {
                    return self.pick(&ctx, h, sched.finish(c));
                }
                let peers: Vec<u64> = ctx
                    .view
                    .neighbors()
                    .filter_map(|(_, s)| match s {
                        SArbDef::InSet { h: j, c } if *j == h => Some(*c),
                        _ => None,
                    })
                    .collect();
                let next = sched.step(i, c, &peers);
                if i + 1 == d {
                    Transition::Continue(SArbDef::Wait {
                        h,
                        local: sched.finish(next),
                    })
                } else {
                    Transition::Continue(SArbDef::InSet { h, c: next })
                }
            }
            SArbDef::Wait { h, local } => self.pick(&ctx, h, local),
            SArbDef::Done { .. } => unreachable!("terminal"),
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let n = g.n() as u64;
        let l = itlog::partition_round_bound(n, self.epsilon);
        let d = DeltaPlusOneSchedule::new(n.max(2), self.cap() as u64).rounds();
        // Partition + per-set coloring + the backward pick cascade whose
        // length is the orientation length ≤ (A+1)·ℓ.
        l + d + (self.cap() as u32 + 1) * (l + 1) + 16
    }
}

impl ArbdefectiveColoring {
    /// Waits for every parent under the partial orientation (same-set
    /// higher in-set color, later set, or still active / still coloring)
    /// to pick; then takes the group least used among them.
    fn pick(&self, ctx: &StepCtx<'_, SArbDef>, h: u32, my_local: u64) -> Transition<SArbDef, u32> {
        let stay = SArbDef::Wait { h, local: my_local };
        let mut counts = vec![0u32; self.k as usize];
        for (_, s) in ctx.view.neighbors() {
            match s {
                // Future parents: not yet oriented — wait.
                SArbDef::Active => return Transition::Continue(stay),
                SArbDef::InSet { h: j, .. } => {
                    if *j >= h {
                        return Transition::Continue(stay);
                    }
                }
                SArbDef::Wait { h: j, local } => {
                    if *j > h || (*j == h && *local > my_local) {
                        return Transition::Continue(stay);
                    }
                }
                SArbDef::Done { h: j, local, g } => {
                    if *j > h || (*j == h && *local > my_local) {
                        counts[*g as usize] += 1;
                    }
                }
            }
        }
        let g = counts
            .iter()
            .enumerate()
            .min_by_key(|&(_, c)| *c)
            .map(|(i, _)| i as u32)
            .expect("k ≥ 1 groups");
        Transition::Terminate(
            SArbDef::Done {
                h,
                local: my_local,
                g,
            },
            g,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_and_verify(g: &Graph, a: usize, k: u32) {
        let p = ArbdefectiveColoring::new(a, k);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).run().unwrap();
        let colors: Vec<u64> = out.outputs.iter().map(|&g| g as u64).collect();
        verify::assert_ok(verify::arbdefective_coloring(
            g,
            &colors,
            p.arbdefect(),
            k as usize,
        ));
        out.metrics.check_identities().unwrap();
    }

    #[test]
    fn splits_forest_unions() {
        let mut rng = ChaCha8Rng::seed_from_u64(400);
        for (a, k) in [(4usize, 4u32), (4, 8), (8, 4)] {
            let gg = gen::forest_union(500, a, &mut rng);
            run_and_verify(&gg.graph, a, k);
        }
    }

    #[test]
    fn k_one_is_trivial_split() {
        // One group: arbdefect bound is A itself — trivially valid.
        let mut rng = ChaCha8Rng::seed_from_u64(401);
        let gg = gen::forest_union(200, 2, &mut rng);
        run_and_verify(&gg.graph, 2, 1);
    }

    #[test]
    fn large_k_gives_arboricity_zero_groups() {
        // k > A: every group must be an independent-ish set (arboricity
        // 0 = no edges inside a group).
        let mut rng = ChaCha8Rng::seed_from_u64(402);
        let gg = gen::forest_union(300, 2, &mut rng);
        let p = ArbdefectiveColoring::new(2, 64);
        assert_eq!(p.arbdefect(), 0);
        let ids = IdAssignment::identity(300);
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        let colors: Vec<u64> = out.outputs.iter().map(|&g| g as u64).collect();
        // Arbdefect 0 means the coloring is a *proper* coloring.
        verify::assert_ok(verify::proper_vertex_coloring(&gg.graph, &colors, 64));
    }

    #[test]
    fn groups_feed_recursion() {
        // The one_plus_eta contract: the largest group is strictly
        // sparser than the input (arboricity ≤ A/k < a for k > (2+ε)).
        let mut rng = ChaCha8Rng::seed_from_u64(403);
        let gg = gen::forest_union(800, 8, &mut rng);
        let p = ArbdefectiveColoring::new(8, 20);
        assert!(p.arbdefect() < 8);
        let ids = IdAssignment::identity(800);
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        for g_idx in 0..20u32 {
            let members: Vec<bool> = out.outputs.iter().map(|&g| g == g_idx).collect();
            let sub = graphcore::InducedSubgraph::new(&gg.graph, &members);
            let nw = graphcore::arboricity::nash_williams_lower_bound(&sub.graph);
            assert!(nw <= p.arbdefect(), "group {g_idx} too dense: NW={nw}");
        }
    }
}
