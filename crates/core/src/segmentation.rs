//! §7.5 — the *segmentation* scheme.
//!
//! The vertices are retired in `k` **segments**: segment `k` is formed
//! first and consists of the first `≈ c·log^(k) n` H-sets, segment `k−1`
//! of the next `≈ c·log^(k−1) n`, …, down to segment 1, which absorbs
//! whatever remains of the full partition schedule. Because the active set
//! decays exponentially (Lemma 6.1), only `O(n / log^(s) n)` vertices
//! survive to segment `s < k`, so even though later segments pay longer
//! windows, the vertex-averaged total is dominated by segment `k`'s
//! `O(log^(k) n)`.
//!
//! This module computes the deterministic global round layout every vertex
//! derives from `(n, k, ε)`: the partition window of each segment and the
//! start of its algorithm-𝒞 window. The instantiations live in
//! [`crate::coloring::ka2`] (𝒞 = iterated Arb-Linial, Theorem 7.13) and
//! [`crate::coloring::ka`] (𝒜 = in-set (Δ+1)-coloring, 𝒞 = recoloring,
//! Theorem 7.16).

use crate::itlog;

/// Deterministic segment layout for one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentSchedule {
    /// `windows[i] = (segment index s, first round, last round)` in
    /// formation order (`i = 0` is segment `k`). Segment indices run from
    /// `k` down to 1; rounds are inclusive.
    windows: Vec<(u32, u32, u32)>,
}

impl SegmentSchedule {
    /// Builds the layout for `k ∈ [2, ρ(n)]` segments (values above
    /// `ρ(n)` are clamped, matching the paper's parameter range).
    pub fn new(n: u64, k: u32, epsilon: f64) -> Self {
        assert!(k >= 2, "segmentation needs k ≥ 2");
        let k = k.min(itlog::rho(n)).max(2);
        let c = (2.0 / epsilon).ceil() as u64;
        let full = itlog::partition_round_bound(n, epsilon) as u64;
        let mut windows = Vec::with_capacity(k as usize);
        let mut next_start: u64 = 1;
        for s in (2..=k).rev() {
            let len = (c * itlog::iterated_log(n, s)).max(1);
            windows.push((s, next_start as u32, (next_start + len - 1) as u32));
            next_start += len;
        }
        // Segment 1 covers the rest of the full partition schedule (and at
        // least c·log n rounds), guaranteeing every vertex joins a window.
        let len1 = (c * itlog::iterated_log(n, 1))
            .max(full.saturating_sub(next_start - 1))
            .max(1);
        windows.push((1, next_start as u32, (next_start + len1 - 1) as u32));
        SegmentSchedule { windows }
    }

    /// Number of segments.
    pub fn k(&self) -> u32 {
        self.windows.len() as u32
    }

    /// The segment whose partition window contains round `h` (i.e. the
    /// segment of a vertex that joined H-set `H_h`). Rounds beyond the
    /// last window belong to segment 1.
    pub fn segment_of(&self, h: u32) -> u32 {
        for &(s, start, end) in &self.windows {
            if h >= start && h <= end {
                return s;
            }
        }
        1
    }

    /// Inclusive partition window `(first, last)` of segment `s`.
    pub fn window(&self, s: u32) -> (u32, u32) {
        let &(_, start, end) = self
            .windows
            .iter()
            .find(|&&(seg, _, _)| seg == s)
            .expect("segment index out of range");
        (start, end)
    }

    /// Last round of the whole partition layout.
    pub fn total_partition_rounds(&self) -> u32 {
        self.windows.last().expect("nonempty").2
    }

    /// First round of segment `s`'s algorithm-𝒞 window, given that the
    /// per-H-set algorithms 𝒜/ℬ take `d_ab` deterministic rounds after a
    /// set forms: all sets of the segment are formed by `window(s).1` and
    /// have finished 𝒜/ℬ `d_ab` rounds later.
    pub fn c_start(&self, s: u32, d_ab: u32) -> u32 {
        self.window(s).1 + d_ab + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_contiguous_and_ordered() {
        let sch = SegmentSchedule::new(1 << 16, 3, 2.0);
        assert_eq!(sch.k(), 3);
        let (s3, e3) = sch.window(3);
        let (s2, e2) = sch.window(2);
        let (s1, e1) = sch.window(1);
        assert_eq!(s3, 1);
        assert_eq!(s2, e3 + 1);
        assert_eq!(s1, e2 + 1);
        assert!(e1 >= itlog::partition_round_bound(1 << 16, 2.0));
    }

    #[test]
    fn window_lengths_follow_iterated_logs() {
        let n = 1u64 << 16;
        let sch = SegmentSchedule::new(n, 3, 2.0);
        // ε=2 ⇒ c=1: segment 3 has log^(3) n = 2 rounds, segment 2 has
        // log^(2) n = 4 rounds.
        let (a, b) = sch.window(3);
        assert_eq!(b - a + 1, itlog::iterated_log(n, 3) as u32);
        let (a, b) = sch.window(2);
        assert_eq!(b - a + 1, itlog::iterated_log(n, 2) as u32);
    }

    #[test]
    fn segment_of_maps_every_round() {
        let sch = SegmentSchedule::new(1 << 12, 4, 2.0);
        let mut seen = std::collections::BTreeSet::new();
        for h in 1..=sch.total_partition_rounds() {
            let s = sch.segment_of(h);
            assert!(s >= 1 && s <= sch.k());
            seen.insert(s);
        }
        // Every segment is hit, and rounds past the end fall into 1.
        assert_eq!(seen.len() as u32, sch.k());
        assert_eq!(sch.segment_of(sch.total_partition_rounds() + 5), 1);
    }

    #[test]
    fn k_clamped_to_rho() {
        let n = 1u64 << 16; // ρ(65536) is small
        let sch = SegmentSchedule::new(n, 99, 2.0);
        assert!(sch.k() <= itlog::rho(n));
        assert!(sch.k() >= 2);
    }

    #[test]
    fn c_start_after_window_and_dab() {
        let sch = SegmentSchedule::new(1 << 16, 2, 2.0);
        let (_, end) = sch.window(2);
        assert_eq!(sch.c_start(2, 7), end + 8);
    }

    #[test]
    fn smaller_epsilon_longer_windows() {
        let a = SegmentSchedule::new(1 << 16, 2, 2.0);
        let b = SegmentSchedule::new(1 << 16, 2, 0.5);
        assert!(b.total_partition_rounds() > a.total_partition_rounds());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn schedules_deterministic_and_total_per_k() {
        for k in 2..6u32 {
            for n in [256u64, 1 << 14, 1 << 20] {
                let a = SegmentSchedule::new(n, k, 2.0);
                let b = SegmentSchedule::new(n, k, 2.0);
                assert_eq!(a, b, "schedule must be deterministic");
                // Total partition rounds cover the analytic bound.
                assert!(
                    a.total_partition_rounds() >= itlog::partition_round_bound(n, 2.0),
                    "n={n}, k={k}"
                );
            }
        }
    }

    #[test]
    fn segment_indices_decrease_along_rounds() {
        let sch = SegmentSchedule::new(1 << 16, 4, 2.0);
        let mut last = u32::MAX;
        for h in 1..=sch.total_partition_rounds() {
            let s = sch.segment_of(h);
            assert!(
                s <= last,
                "segment index must be non-increasing over rounds"
            );
            last = s;
        }
        assert_eq!(last, 1);
    }

    #[test]
    fn later_segments_have_geometrically_longer_windows() {
        let n = 1u64 << 32;
        let sch = SegmentSchedule::new(n, 4, 2.0);
        let mut prev_len = 0u32;
        for s in (1..=sch.k()).rev() {
            let (a, b) = sch.window(s);
            let len = b - a + 1;
            assert!(
                len >= prev_len,
                "segment {s} window shrank: {len} < {prev_len}"
            );
            prev_len = len;
        }
    }
}
