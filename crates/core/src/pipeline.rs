//! §1.2's two-subtask pipeline as a real protocol.
//!
//! The paper motivates vertex-averaged complexity with a task made of two
//! subtasks 𝒜 → ℬ: "It would be better to execute the second task in
//! each processor once it terminates, rather than waiting for all
//! processors to complete the first task. This may result in asynchronous
//! start of the second task, which requires more sophisticated
//! algorithms, but significantly improves the running times of the
//! majority of processors."
//!
//! [`ColorThenCensus`] implements exactly that: 𝒜 is the §7.2 coloring
//! (`O(1)` vertex-averaged), ℬ is a *neighborhood census* — each vertex
//! reports how many distinct colors appear in its closed neighborhood,
//! aggregated over `b_rounds` rounds of local gossip. ℬ at a vertex can
//! only start once the vertex **and all its neighbors** hold 𝒜-outputs
//! (the local readiness condition — the "sophistication" asynchronous
//! start demands), so its start time is `max over N⁺(v)` of the 𝒜
//! termination rounds: still `O(1)` on average by the decay argument,
//! versus the global `Θ(log n)` a synchronized barrier would charge every
//! vertex.

use crate::coverfree::CoverFree;
use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition, WireSize};
use std::sync::OnceLock;

/// Per-vertex state.
/// Field conventions: `h` is the H-set index, `color` the 𝒜 output,
/// `seen` the census accumulator, `left` the remaining ℬ rounds.
#[allow(missing_docs)]
#[derive(Clone, Debug)]
pub enum SPipe {
    /// 𝒜: running Procedure Partition.
    Active,
    /// 𝒜: joined H-set `h`; colors next round.
    Joined { h: u32 },
    /// 𝒜 done (at round `at`); waiting for all neighbors to hold colors
    /// (ℬ readiness).
    Colored { color: u64, at: u32 },
    /// ℬ: gossiping the census.
    Census {
        color: u64,
        at: u32,
        seen: Vec<u64>,
        left: u32,
    },
}

/// Wire message of the pipeline. Neighbors need the partition status,
/// a joiner's H-index, and — once 𝒜 is done — the color. The census
/// accumulator `seen`, the remaining-rounds counter `left`, and the
/// 𝒜-completion round `at` are private bookkeeping: publishing `seen`
/// would put an `O(Δ log n)`-bit vector on the wire every gossip round
/// for data no neighbor reads.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // mirrors the `SPipe` conventions above
pub enum PipeMsg {
    Active,
    Joined { h: u32 },
    HasColor { color: u64 },
}

impl WireSize for PipeMsg {
    fn wire_bits(&self) -> u64 {
        // 2-bit tag for three variants, then the payload.
        match self {
            PipeMsg::Active => 2,
            PipeMsg::Joined { h } => 2 + h.wire_bits(),
            PipeMsg::HasColor { color } => 2 + color.wire_bits(),
        }
    }
}

/// Output of the pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipeOut {
    /// The 𝒜 (coloring) output.
    pub color: u64,
    /// Round in which 𝒜's output was fixed at this vertex.
    pub a_done_round: u32,
    /// Distinct colors observed in the closed neighborhood during ℬ.
    pub distinct_in_neighborhood: usize,
}

/// 𝒜 = §7.2 coloring, ℬ = `b_rounds` of neighborhood census, started
/// per-vertex as soon as the local readiness condition holds.
#[derive(Debug)]
pub struct ColorThenCensus {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    /// Length of subtask ℬ.
    pub b_rounds: u32,
    fam: OnceLock<CoverFree>,
}

impl ColorThenCensus {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize, b_rounds: u32) -> Self {
        ColorThenCensus {
            arboricity,
            epsilon: 2.0,
            b_rounds: b_rounds.max(1),
            fam: OnceLock::new(),
        }
    }

    fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    fn family(&self, ids: &IdAssignment) -> CoverFree {
        *self
            .fam
            .get_or_init(|| CoverFree::for_palette(ids.id_space().max(2), self.cap() as u64))
    }
}

/// The 𝒜-output a neighbor currently exposes, if any.
fn color_of(m: &PipeMsg) -> Option<u64> {
    match m {
        PipeMsg::HasColor { color } => Some(*color),
        _ => None,
    }
}

impl Protocol for ColorThenCensus {
    type State = SPipe;
    type Msg = PipeMsg;
    type Output = PipeOut;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> SPipe {
        SPipe::Active
    }

    fn publish(&self, state: &SPipe) -> PipeMsg {
        match state {
            SPipe::Active => PipeMsg::Active,
            SPipe::Joined { h } => PipeMsg::Joined { h: *h },
            SPipe::Colored { color, .. } | SPipe::Census { color, .. } => {
                PipeMsg::HasColor { color: *color }
            }
        }
    }

    fn step(&self, ctx: StepCtx<'_, SPipe, PipeMsg>) -> Transition<SPipe, PipeOut> {
        match ctx.state.clone() {
            SPipe::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, PipeMsg::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(SPipe::Joined { h: ctx.round })
                } else {
                    Transition::Continue(SPipe::Active)
                }
            }
            SPipe::Joined { h } => {
                // One Arb-Linial round (the §7.2 𝒜).
                let my_id = ctx.my_id();
                let parents: Vec<u64> = ctx
                    .view
                    .neighbors()
                    .filter(|(u, s)| match s {
                        PipeMsg::Active => true,
                        PipeMsg::Joined { h: j } => *j == h && ctx.ids.id(*u) > my_id,
                        _ => false,
                    })
                    .map(|(u, _)| ctx.ids.id(u))
                    .collect();
                let color = self.family(ctx.ids).reduce(my_id, &parents);
                Transition::Continue(SPipe::Colored {
                    color,
                    at: ctx.round,
                })
            }
            SPipe::Colored { color, at } => {
                // ℬ readiness: every neighbor holds an 𝒜-output.
                if ctx.view.neighbors().all(|(_, s)| color_of(s).is_some()) {
                    self.census_step(&ctx, color, at, Vec::new(), self.b_rounds)
                } else {
                    Transition::Continue(SPipe::Colored { color, at })
                }
            }
            SPipe::Census {
                color,
                at,
                seen,
                left,
            } => self.census_step(&ctx, color, at, seen, left),
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        itlog::partition_round_bound(g.n() as u64, self.epsilon) + self.b_rounds + 8
    }

    fn phase_names(&self) -> &'static [&'static str] {
        &["partition", "color", "await", "census"]
    }

    fn phase_of(&self, state: &SPipe) -> simlocal::PhaseId {
        match state {
            SPipe::Active => 0,
            SPipe::Joined { .. } => 1,
            SPipe::Colored { .. } => 2,
            SPipe::Census { .. } => 3,
        }
    }
}

impl ColorThenCensus {
    fn census_step(
        &self,
        ctx: &StepCtx<'_, SPipe, PipeMsg>,
        color: u64,
        at: u32,
        mut seen: Vec<u64>,
        left: u32,
    ) -> Transition<SPipe, PipeOut> {
        for (_, s) in ctx.view.neighbors() {
            if let Some(c) = color_of(s) {
                if !seen.contains(&c) {
                    seen.push(c);
                }
            }
        }
        if !seen.contains(&color) {
            seen.push(color);
        }
        if left <= 1 {
            let out = PipeOut {
                color,
                a_done_round: at,
                distinct_in_neighborhood: seen.len(),
            };
            Transition::Terminate(
                SPipe::Census {
                    color,
                    at,
                    seen,
                    left: 0,
                },
                out,
            )
        } else {
            Transition::Continue(SPipe::Census {
                color,
                at,
                seen,
                left: left - 1,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pipeline_outputs_proper_coloring_and_census() {
        let mut rng = ChaCha8Rng::seed_from_u64(700);
        let gg = gen::forest_union(400, 2, &mut rng);
        let ids = IdAssignment::identity(400);
        let p = ColorThenCensus::new(2, 5);
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        let colors: Vec<u64> = out.outputs.iter().map(|o| o.color).collect();
        verify::assert_ok(verify::proper_vertex_coloring(
            &gg.graph,
            &colors,
            usize::MAX,
        ));
        // The census must count at least the closed-neighborhood truth
        // (gossip can only add colors from 2-hop ripples of ℬ overlap —
        // here neighbors republish only their own colors, so equality).
        for v in gg.graph.vertices() {
            let mut truth: Vec<u64> = gg
                .graph
                .neighbors(v)
                .iter()
                .map(|&u| colors[u as usize])
                .chain([colors[v as usize]])
                .collect();
            truth.sort_unstable();
            truth.dedup();
            assert_eq!(
                out.outputs[v as usize].distinct_in_neighborhood,
                truth.len(),
                "vertex {v} census mismatch"
            );
        }
    }

    #[test]
    fn asynchronous_start_beats_global_barrier_on_average() {
        let mut rng = ChaCha8Rng::seed_from_u64(701);
        let gg = gen::forest_union(8192, 2, &mut rng);
        let ids = IdAssignment::identity(8192);
        let b = 6;
        let p = ColorThenCensus::new(2, b);
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        // Average completion with async start…
        let async_avg = out.metrics.vertex_averaged();
        // …vs the synchronized discipline: everyone waits for the global
        // 𝒜 worst case before running ℬ.
        let a_worst = out.outputs.iter().map(|o| o.a_done_round).max().unwrap();
        let sync_avg = (a_worst + 1 + b) as f64;
        assert!(
            async_avg + 1.0 < sync_avg,
            "async {async_avg} should beat synchronized {sync_avg}"
        );
        out.metrics.check_identities().unwrap();
    }

    #[test]
    fn readiness_condition_orders_census_after_neighbors() {
        // ℬ never starts before a neighbor's 𝒜-output exists, so every
        // observed census already includes all neighbor colors — checked
        // exhaustively by the first test; here: termination ordering.
        let mut rng = ChaCha8Rng::seed_from_u64(702);
        let gg = gen::forest_union(600, 3, &mut rng);
        let ids = IdAssignment::identity(600);
        let p = ColorThenCensus::new(3, 4);
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        for v in gg.graph.vertices() {
            let term = out.metrics.termination_round[v as usize];
            for &u in gg.graph.neighbors(v) {
                let u_a = out.outputs[u as usize].a_done_round;
                assert!(
                    term >= u_a + p.b_rounds,
                    "vertex {v} finished ℬ before neighbor {u} finished 𝒜"
                );
            }
        }
    }
}
