//! §6.2 — generic composition of Procedure Partition with an auxiliary
//! per-H-set algorithm 𝒜 (Corollary 6.4).
//!
//! Algorithm 𝒞: in each iteration, a new H-set forms and *immediately*
//! runs 𝒜 on its induced subgraph (different sets run 𝒜 in overlapping
//! windows — legal because 𝒜 only reads same-set neighbors). If 𝒜's
//! worst case is `T_𝒜` rounds, the vertex-averaged complexity of the
//! composition is `O(T_𝒜)`: a vertex of `H_i` terminates by round
//! `i + 1 + T_𝒜`, and `Σ_i n_i · (i + T_𝒜) = O(n · T_𝒜)` by the
//! exponential decay of Lemma 6.1.
//!
//! This module is the library form of the pattern hand-specialized by the
//! §7/§8 protocols; use it to drop *any* in-set computation onto the
//! partition decay.

use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition, WireSize};

/// One step's outcome for an in-set algorithm.
pub enum SubStep<S, O> {
    /// Keep running with a new sub-state.
    Continue(S),
    /// Finished: the composed vertex terminates with this output.
    Done(O),
}

/// An algorithm that runs inside a single H-set.
///
/// The engine guarantees: all members of `H_h` start at the same global
/// round (`local_round = 0` simultaneously), and `peers` in
/// `peers` yields exactly the same-set neighbors with their current
/// sub-states (or `None` while a peer is still in its entry round).
pub trait HSetAlgo: Sync {
    /// Per-vertex sub-state, published to same-set neighbors (it travels
    /// inside [`ComposeMsg::Running`], so it must size itself).
    type Sub: Clone + Send + Sync + WireSize;
    /// Per-vertex output.
    type Output: Clone + Send + Sync;

    /// Sub-state when entering the set (before the first step).
    fn enter(&self, g: &Graph, ids: &IdAssignment, v: VertexId, h: u32) -> Self::Sub;

    /// One synchronized in-set round.
    fn step(
        &self,
        ctx: &StepCtx<'_, ComposeState<Self::Sub>, ComposeMsg<Self::Sub>>,
        h: u32,
        local_round: u32,
        sub: &Self::Sub,
        peers: &[(VertexId, Self::Sub)],
    ) -> SubStep<Self::Sub, Self::Output>;

    /// A worst-case round bound for the engine's safety cap.
    fn round_bound(&self, g: &Graph) -> u32;
}

/// Composed per-vertex state.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum ComposeState<S> {
    /// Still in Procedure Partition.
    Active,
    /// Joined H-set `h` this round; enters 𝒜 next round.
    Joined { h: u32 },
    /// Running 𝒜 with the given sub-state.
    Running { h: u32, local: u32, sub: S },
}

/// Wire message of the composition: partition status plus the in-set
/// sub-state. The `local` round counter of
/// [`ComposeState::Running`] is private bookkeeping — peers synchronize
/// through the global iteration windows, so it never travels.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // mirrors the `ComposeState` conventions above
pub enum ComposeMsg<S> {
    /// Still in Procedure Partition.
    Active,
    /// Joined H-set `h` this round.
    Joined { h: u32 },
    /// Running 𝒜 with the given sub-state.
    Running { h: u32, sub: S },
}

impl<S: WireSize> WireSize for ComposeMsg<S> {
    fn wire_bits(&self) -> u64 {
        // 2-bit tag for three variants, then the payload.
        match self {
            ComposeMsg::Active => 2,
            ComposeMsg::Joined { h } => 2 + h.wire_bits(),
            ComposeMsg::Running { h, sub } => 2 + h.wire_bits() + sub.wire_bits(),
        }
    }
}

/// Algorithm 𝒞 of §6.2: Partition ∘ 𝒜.
#[derive(Clone, Debug)]
pub struct Compose<A> {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    /// The in-set algorithm.
    pub algo: A,
}

impl<A: HSetAlgo> Compose<A> {
    /// Standard composition (ε = 2).
    pub fn new(arboricity: usize, algo: A) -> Self {
        Compose {
            arboricity,
            epsilon: 2.0,
            algo,
        }
    }

    /// Degree threshold `A` — also the max in-set degree 𝒜 sees.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }
}

impl<A: HSetAlgo> Protocol for Compose<A> {
    type State = ComposeState<A::Sub>;
    type Msg = ComposeMsg<A::Sub>;
    type Output = A::Output;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> Self::State {
        ComposeState::Active
    }

    fn publish(&self, state: &Self::State) -> Self::Msg {
        match state {
            ComposeState::Active => ComposeMsg::Active,
            ComposeState::Joined { h } => ComposeMsg::Joined { h: *h },
            ComposeState::Running { h, sub, .. } => ComposeMsg::Running {
                h: *h,
                sub: sub.clone(),
            },
        }
    }

    fn step(
        &self,
        ctx: StepCtx<'_, Self::State, Self::Msg>,
    ) -> Transition<Self::State, Self::Output> {
        match ctx.state.clone() {
            ComposeState::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, ComposeMsg::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(ComposeState::Joined { h: ctx.round })
                } else {
                    Transition::Continue(ComposeState::Active)
                }
            }
            ComposeState::Joined { h } => {
                let sub = self.algo.enter(ctx.graph, ctx.ids, ctx.v, h);
                self.run_sub(&ctx, h, 0, sub)
            }
            ComposeState::Running { h, local, sub } => self.run_sub(&ctx, h, local, sub),
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        itlog::partition_round_bound(g.n() as u64, self.epsilon) + self.algo.round_bound(g) + 8
    }

    fn phase_names(&self) -> &'static [&'static str] {
        &["partition", "inset"]
    }

    fn phase_of(&self, state: &Self::State) -> simlocal::PhaseId {
        match state {
            ComposeState::Active => 0,
            // A `Joined` vertex spends its round entering 𝒜.
            ComposeState::Joined { .. } | ComposeState::Running { .. } => 1,
        }
    }
}

impl<A: HSetAlgo> Compose<A> {
    fn run_sub(
        &self,
        ctx: &StepCtx<'_, ComposeState<A::Sub>, ComposeMsg<A::Sub>>,
        h: u32,
        local: u32,
        sub: A::Sub,
    ) -> Transition<ComposeState<A::Sub>, A::Output> {
        let peers: Vec<(VertexId, A::Sub)> = ctx
            .view
            .neighbors()
            .filter_map(|(u, s)| match s {
                ComposeMsg::Running { h: j, sub } if *j == h => Some((u, sub.clone())),
                // Peer entered this round: expose its entry sub-state.
                ComposeMsg::Joined { h: j } if *j == h => {
                    Some((u, self.algo.enter(ctx.graph, ctx.ids, u, h)))
                }
                _ => None,
            })
            .collect();
        match self.algo.step(ctx, h, local, &sub, &peers) {
            SubStep::Continue(next) => Transition::Continue(ComposeState::Running {
                h,
                local: local + 1,
                sub: next,
            }),
            SubStep::Done(out) => {
                Transition::Terminate(ComposeState::Running { h, local, sub }, out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inset::DeltaPlusOneSchedule;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// 𝒜 = "idle for T rounds, then output the H-index" — makes
    /// Corollary 6.4's arithmetic directly observable.
    struct Delay {
        t: u32,
    }
    impl HSetAlgo for Delay {
        type Sub = ();
        type Output = u32;
        fn enter(&self, _: &Graph, _: &IdAssignment, _: VertexId, _: u32) {}
        fn step(
            &self,
            _: &StepCtx<'_, ComposeState<()>, ComposeMsg<()>>,
            h: u32,
            local: u32,
            _: &(),
            _: &[(VertexId, ())],
        ) -> SubStep<(), u32> {
            if local + 1 >= self.t {
                SubStep::Done(h)
            } else {
                SubStep::Continue(())
            }
        }
        fn round_bound(&self, _: &Graph) -> u32 {
            self.t + 1
        }
    }

    /// 𝒜 = the in-set `(A+1)`-coloring, phrased as an [`HSetAlgo`].
    struct InSetColoring {
        sched: DeltaPlusOneSchedule,
    }
    impl HSetAlgo for InSetColoring {
        type Sub = u64;
        type Output = u64;
        fn enter(&self, _: &Graph, ids: &IdAssignment, v: VertexId, _: u32) -> u64 {
            ids.id(v)
        }
        fn step(
            &self,
            _: &StepCtx<'_, ComposeState<u64>, ComposeMsg<u64>>,
            _: u32,
            local: u32,
            sub: &u64,
            peers: &[(VertexId, u64)],
        ) -> SubStep<u64, u64> {
            if local >= self.sched.rounds() {
                return SubStep::Done(self.sched.finish(*sub));
            }
            let others: Vec<u64> = peers.iter().map(|&(_, c)| c).collect();
            let next = self.sched.step(local, *sub, &others);
            if local + 1 == self.sched.rounds() {
                SubStep::Done(self.sched.finish(next))
            } else {
                SubStep::Continue(next)
            }
        }
        fn round_bound(&self, _: &Graph) -> u32 {
            self.sched.rounds() + 2
        }
    }

    #[test]
    fn corollary_6_4_vertex_average_is_o_of_t() {
        // VA of Partition∘Delay(T) ≈ T + O(1), independent of n.
        let mut rng = ChaCha8Rng::seed_from_u64(200);
        for n in [1024usize, 8192] {
            let gg = gen::forest_union(n, 2, &mut rng);
            let ids = IdAssignment::identity(n);
            for t in [1u32, 5, 20] {
                let p = Compose::new(2, Delay { t });
                let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
                let va = out.metrics.vertex_averaged();
                // Corollary 6.4 with ε = 2: VA ≤ 2·(T + 1) + 1 comfortably.
                assert!(
                    va <= 2.0 * (t as f64 + 1.0) + 1.0,
                    "n={n}, T={t}: VA={va} not O(T)"
                );
                // Output is the H-index.
                for v in gg.graph.vertices() {
                    let term = out.metrics.termination_round[v as usize];
                    assert_eq!(term, out.outputs[v as usize] + t);
                }
            }
        }
    }

    #[test]
    fn phase_breakdown_partitions_round_sum() {
        use simlocal::{PhaseBreakdown, Protocol as _};
        let mut rng = ChaCha8Rng::seed_from_u64(202);
        let gg = gen::forest_union(512, 2, &mut rng);
        let ids = IdAssignment::identity(512);
        let p = Compose::new(2, Delay { t: 4 });
        let mut pb = PhaseBreakdown::new(p.phase_names());
        let out = simlocal::Runner::new(&p, &gg.graph, &ids)
            .run_with(&mut pb)
            .unwrap();
        assert_eq!(pb.total_round_sum(), out.metrics.round_sum());
        assert_eq!(pb.total_round_sum(), out.stats.steps);
        // Every vertex spends Delay's T rounds in the in-set phase plus
        // one Joined entry round.
        assert_eq!(pb.round_sum(1), 512 * 4);
        assert!(pb.round_sum(0) > 0, "partition phase consumed rounds");
        // All terminations happen inside 𝒜.
        assert_eq!(pb.terminations(1), 512);
        assert_eq!(pb.terminations(0), 0);
        let va_sum: f64 = (0..pb.phases()).map(|i| pb.vertex_averaged(i, 512)).sum();
        assert!((va_sum - out.metrics.vertex_averaged()).abs() < 1e-9);
    }

    #[test]
    fn composed_in_set_coloring_is_proper_within_sets() {
        let mut rng = ChaCha8Rng::seed_from_u64(201);
        let gg = gen::forest_union(600, 3, &mut rng);
        let ids = IdAssignment::identity(600);
        let cap = degree_cap(3, 2.0) as u64;
        let p = Compose::new(
            3,
            InSetColoring {
                sched: DeltaPlusOneSchedule::new(600, cap),
            },
        );
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        // Colors are proper within each H-set (pair them with the H-index
        // = termination round minus the in-set duration — simpler: check
        // every edge whose endpoints terminated in the same round).
        for (_, (u, v)) in gg.graph.edges() {
            let tu = out.metrics.termination_round[u as usize];
            let tv = out.metrics.termination_round[v as usize];
            if tu == tv {
                assert_ne!(
                    out.outputs[u as usize], out.outputs[v as usize],
                    "same-set edge ({u},{v}) monochromatic"
                );
            }
        }
        // Palette is A+1.
        assert!(out.outputs.iter().all(|&c| c <= cap));
        // And the global pair ⟨color, set⟩ is a proper coloring.
        let paired: Vec<u64> = gg
            .graph
            .vertices()
            .map(|v| {
                out.outputs[v as usize] * 10_000 + out.metrics.termination_round[v as usize] as u64
            })
            .collect();
        verify::assert_ok(verify::proper_vertex_coloring(
            &gg.graph,
            &paired,
            usize::MAX,
        ));
    }
}
