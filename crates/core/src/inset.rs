//! In-H-set coloring subroutines shared by the §7 and §8 protocols.
//!
//! Procedure Partition guarantees every vertex at most `A = ⌊(2+ε)a⌋`
//! neighbors inside its own H-set (and ahead of it), so inside a set the
//! maximum relevant degree is `A` no matter how large Δ(G) is. Two
//! deterministic subroutines exploit this:
//!
//! * [`LinialSchedule`] — iterated Linial color reduction
//!   (Procedure Arb-Linial-Coloring's engine): from ID-colors down to the
//!   `O(A²)` fixpoint in `O(log* n)` synchronized steps;
//! * [`KwSchedule`] — Kuhn–Wattenhofer batched color reduction: from the
//!   `O(A²)` palette down to exactly `A + 1` colors in `O(A log A)`
//!   synchronized steps. Together they give the `(Δ+1)`-coloring-within-a-
//!   set used as "the (Δ+1)-coloring algorithm of \[7\]" in §7.4/§7.7/§8
//!   (substitution documented in DESIGN.md: `O(A log A + log* n)` instead
//!   of \[7\]'s `O(A + log* n)`; both depend on `a` only).
//!
//! Both schedules are pure functions of globally known quantities
//! (`id_space`, `A`), so every vertex derives the same round layout — the
//! synchronization the paper's phase analyses assume.

use crate::coverfree::{reduction_schedule, CoverFree};

/// Iterated Linial reduction schedule.
#[derive(Clone, Debug)]
pub struct LinialSchedule {
    fams: Vec<CoverFree>,
    p0: u64,
}

impl LinialSchedule {
    /// Schedule reducing a palette of `p0` initial colors (typically the
    /// ID space) against unions of up to `a_bound` conflicting sets.
    pub fn new(p0: u64, a_bound: u64) -> Self {
        LinialSchedule {
            fams: reduction_schedule(p0, a_bound),
            p0: p0.max(2),
        }
    }

    /// Number of synchronized rounds (`O(log* p0)`).
    pub fn rounds(&self) -> u32 {
        self.fams.len() as u32
    }

    /// Palette size after the full schedule (`O(a_bound²)`).
    pub fn final_palette(&self) -> u64 {
        self.fams.last().map(|f| f.ground_size()).unwrap_or(self.p0)
    }

    /// Executes step `i ∈ 0..rounds()`: `my` is this vertex's current
    /// color, `others` the current colors of its conflicting neighbors
    /// (≤ `a_bound` of them). Returns the new color.
    pub fn step(&self, i: u32, my: u64, others: &[u64]) -> u64 {
        self.fams[i as usize].reduce(my, others)
    }
}

/// Kuhn–Wattenhofer batched color reduction schedule: palette `p0` down to
/// `k = cap + 1` colors, where `cap` bounds the relevant degree.
///
/// Each *pass* splits the palette into blocks of `2k` colors and spends
/// `k` rounds folding the upper half of every block into the lower half
/// (one color class per round re-picks a free color among its ≤ `cap`
/// relevant neighbors); a pass maps palette `p` to `⌈p/(2k)⌉·k`.
#[derive(Clone, Debug)]
pub struct KwSchedule {
    /// Target palette size (`cap + 1`).
    k: u64,
    /// Palette size before each pass.
    passes: Vec<u64>,
}

impl KwSchedule {
    /// Builds the schedule from the starting palette and the degree cap.
    pub fn new(p0: u64, cap: u64) -> Self {
        let k = cap + 1;
        let mut passes = Vec::new();
        let mut p = p0;
        while p > k {
            passes.push(p);
            p = p.div_ceil(2 * k) * k;
            assert!(passes.len() <= 64, "KW schedule failed to converge");
        }
        KwSchedule { k, passes }
    }

    /// Final palette size `k = cap + 1`.
    pub fn final_palette(&self) -> u64 {
        self.k
    }

    /// Total synchronized rounds: `k` per pass.
    pub fn rounds(&self) -> u32 {
        (self.passes.len() as u64 * self.k) as u32
    }

    /// Executes KW round `i ∈ 0..rounds()` for a vertex currently colored
    /// `my`, with `others` the current colors of its relevant neighbors.
    /// Returns the (possibly unchanged) new color.
    ///
    /// Colors live in `0..passes[pass]` during a pass and are compacted to
    /// `0..⌈p/(2k)⌉·k` at the pass boundary (a pure relabeling folded into
    /// the first round of the next pass — callers never see it).
    pub fn step(&self, i: u32, my: u64, others: &[u64]) -> u64 {
        let k = self.k;
        let pass = (i as u64 / k) as usize;
        let t = i as u64 % k;
        let my = if t == 0 && pass > 0 {
            Self::compact(self.passes[pass - 1], k, my)
        } else {
            my
        };
        let block = my / (2 * k);
        let pos = my % (2 * k);
        if pos != k + t {
            return my;
        }
        // Re-pick: smallest position in [0, k) not used by a relevant
        // neighbor currently sitting in the lower half of my block.
        // Neighbors' colors may still be in the previous pass's space on
        // the compaction round, so compact them the same way.
        let mut used = vec![false; k as usize];
        for &oc in others {
            let oc = if t == 0 && pass > 0 {
                Self::compact(self.passes[pass - 1], k, oc)
            } else {
                oc
            };
            if oc / (2 * k) == block && oc % (2 * k) < k {
                used[(oc % (2 * k)) as usize] = true;
            }
        }
        let free = used
            .iter()
            .position(|&u| !u)
            .expect("cap+1 candidates vs ≤ cap neighbors") as u64;
        block * (2 * k) + free
    }

    /// Pass-boundary relabeling: color in block layout `2k` → dense layout
    /// `k` per block.
    fn compact(_prev_palette: u64, k: u64, c: u64) -> u64 {
        let block = c / (2 * k);
        let pos = c % (2 * k);
        debug_assert!(pos < k, "compaction requires the upper half to be empty");
        block * k + pos
    }

    /// The color each vertex should report after the last round (applies
    /// the final pass's compaction).
    pub fn finish(&self, my: u64) -> u64 {
        if self.passes.is_empty() {
            my
        } else {
            Self::compact(*self.passes.last().unwrap(), self.k, my)
        }
    }
}

/// The full in-set `(cap+1)`-coloring schedule: iterated Linial from IDs,
/// then KW reduction to `cap + 1` colors.
#[derive(Clone, Debug)]
pub struct DeltaPlusOneSchedule {
    /// Phase 1.
    pub linial: LinialSchedule,
    /// Phase 2.
    pub kw: KwSchedule,
}

impl DeltaPlusOneSchedule {
    /// Builds the schedule for vertices with IDs in `0..id_space` and
    /// relevant degree at most `cap`.
    pub fn new(id_space: u64, cap: u64) -> Self {
        let linial = LinialSchedule::new(id_space, cap);
        let kw = KwSchedule::new(linial.final_palette(), cap);
        DeltaPlusOneSchedule { linial, kw }
    }

    /// Total synchronized rounds (`O(log* n + cap·log cap)`).
    pub fn rounds(&self) -> u32 {
        self.linial.rounds() + self.kw.rounds()
    }

    /// Executes round `i ∈ 0..rounds()`; colors start as IDs.
    pub fn step(&self, i: u32, my: u64, others: &[u64]) -> u64 {
        if i < self.linial.rounds() {
            self.linial.step(i, my, others)
        } else {
            self.kw.step(i - self.linial.rounds(), my, others)
        }
    }

    /// Final color extraction after the last round: in `0..cap+1`.
    pub fn finish(&self, my: u64) -> u64 {
        self.kw.finish(my)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, Graph};

    /// Centralized synchronous driver over an arbitrary graph: every
    /// vertex applies the schedule against ALL its neighbors. Validity
    /// requires max degree ≤ cap.
    fn drive_delta_plus_one(g: &Graph, cap: u64) -> Vec<u64> {
        let sched = DeltaPlusOneSchedule::new(g.n() as u64, cap);
        let mut colors: Vec<u64> = (0..g.n() as u64).collect();
        for i in 0..sched.rounds() {
            let prev = colors.clone();
            for v in g.vertices() {
                let others: Vec<u64> = g.neighbors(v).iter().map(|&u| prev[u as usize]).collect();
                colors[v as usize] = sched.step(i, prev[v as usize], &others);
            }
        }
        colors.iter().map(|&c| sched.finish(c)).collect()
    }

    #[test]
    fn linial_schedule_properties() {
        let s = LinialSchedule::new(1 << 20, 4);
        assert!(s.rounds() >= 1 && s.rounds() <= 8);
        assert!(s.final_palette() <= 2000);
    }

    #[test]
    fn kw_schedule_shrinks_to_cap_plus_one() {
        let s = KwSchedule::new(500, 4);
        assert_eq!(s.final_palette(), 5);
        assert!(s.rounds() > 0);
        // Pass count ~ log(500/5)/log(10): a handful.
        assert!(s.rounds() <= 5 * 10);
    }

    #[test]
    fn kw_noop_when_already_small() {
        let s = KwSchedule::new(4, 5);
        assert_eq!(s.rounds(), 0);
        assert_eq!(s.finish(3), 3);
    }

    #[test]
    fn full_schedule_colors_cycle() {
        let g = gen::cycle(97);
        let colors = drive_delta_plus_one(&g, 2);
        verify::assert_ok(verify::proper_vertex_coloring(&g, &colors, 3));
        assert!(colors.iter().all(|&c| c < 3));
    }

    #[test]
    fn full_schedule_colors_grid() {
        let g = gen::grid(12, 12);
        let colors = drive_delta_plus_one(&g, 4);
        verify::assert_ok(verify::proper_vertex_coloring(&g, &colors, 5));
    }

    #[test]
    fn full_schedule_colors_path_and_star() {
        let p = gen::path(64);
        let colors = drive_delta_plus_one(&p, 2);
        verify::assert_ok(verify::proper_vertex_coloring(&p, &colors, 3));
        let s = gen::star(20);
        let colors = drive_delta_plus_one(&s, 19);
        verify::assert_ok(verify::proper_vertex_coloring(&s, &colors, 20));
    }

    #[test]
    fn intermediate_linial_colorings_stay_proper() {
        let g = gen::cycle(50);
        let sched = LinialSchedule::new(50, 2);
        let mut colors: Vec<u64> = (0..50).collect();
        for i in 0..sched.rounds() {
            let prev = colors.clone();
            for v in g.vertices() {
                let others: Vec<u64> = g.neighbors(v).iter().map(|&u| prev[u as usize]).collect();
                colors[v as usize] = sched.step(i, prev[v as usize], &others);
            }
            verify::assert_ok(verify::proper_vertex_coloring(&g, &colors, usize::MAX));
        }
        assert!(colors.iter().all(|&c| c < sched.final_palette()));
    }

    #[test]
    fn rounds_scale_with_cap_not_n() {
        // Linial rounds grow like log* n; KW rounds like cap·log(cap).
        let small = DeltaPlusOneSchedule::new(1 << 10, 4).rounds();
        let big = DeltaPlusOneSchedule::new(1 << 40, 4).rounds();
        assert!(
            big <= small + 4 * 3,
            "rounds grew too fast: {small} -> {big}"
        );
    }
}
