//! §3 — the prior results on rings that motivated the paper (\[12\],
//! Feuilloley).
//!
//! * [`LeaderElection`] — the *positive* prior result: on a cycle, leader
//!   election has vertex-averaged complexity `O(log n)` although its
//!   worst case is `Θ(n)`. A vertex retires as non-leader the moment a
//!   larger ID reaches it along the ring; only the maximum must wait for
//!   its probe to circle half the ring. The worst ID assignment makes
//!   `Σ_v dist(v, nearest larger ID) = Θ(n log n)` — vertex-averaged
//!   `Θ(log n)`.
//! * [`RingThreeColoring`] — the *negative* prior result: 3-coloring a
//!   cycle has the **same** `Θ(log* n)` vertex-averaged and worst-case
//!   complexity (no early retirement is possible), via Cole–Vishkin
//!   color reduction. This is the contrast the paper's general-graph
//!   results break: on rings the decay trick is unavailable, in general
//!   bounded-arboricity graphs it is.
//!
//! Both protocols double as extra substrate tests for the simulator: the
//! leader election exercises data-dependent termination times spanning
//! `Θ(n)` rounds, the Cole–Vishkin reduction exercises the bit-trick
//! pipeline.

use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition};

/// Leader election on a cycle (every vertex must have degree exactly 2).
///
/// Each round a vertex forwards the largest ID it has seen; it *commits*
/// the output "non-leader" the round it first learns of an ID larger than
/// its own — its measured running time under the first definition of \[12\]
/// (§2): the output is fixed, the vertex merely keeps relaying so larger
/// IDs are not blocked behind it. The maximum-ID vertex commits "leader"
/// after `⌈n/2⌉ + 1` rounds (its ID has met itself around the ring). The
/// engine terminates everyone together at that point; vertex-averaged
/// complexity is computed from the commit rounds via
/// [`crate::extension::metrics_from_commits`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LeaderElection;

/// Private state: largest ID seen, plus the commit round if decided.
/// Only `best` travels — the commit round is bookkeeping for the final
/// output, so the wire message ([`LeMsg`]) is the relay value alone.
#[derive(Clone, Copy, Debug)]
pub struct LeState {
    /// Largest ID seen so far (relay value).
    pub best: u64,
    /// Round the non-leader output was committed.
    pub committed: Option<u32>,
}

/// Wire message: the largest ID seen so far (`O(log n)` bits).
pub type LeMsg = u64;

/// Output: commit round and the verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeOut {
    /// Round in which the output was fixed.
    pub commit_round: u32,
    /// Whether this vertex is the leader.
    pub is_leader: bool,
}

impl Protocol for LeaderElection {
    type State = LeState;
    type Msg = LeMsg;
    type Output = LeOut;

    fn init(&self, g: &Graph, ids: &IdAssignment, v: VertexId) -> LeState {
        assert_eq!(g.degree(v), 2, "leader election runs on cycles");
        LeState {
            best: ids.id(v),
            committed: None,
        }
    }

    fn publish(&self, state: &LeState) -> LeMsg {
        state.best
    }

    fn step(&self, ctx: StepCtx<'_, LeState, LeMsg>) -> Transition<LeState, LeOut> {
        let my_id = ctx.my_id();
        let best = ctx
            .view
            .neighbors()
            .map(|(_, &b)| b)
            .chain([ctx.state.best])
            .max()
            .expect("cycle vertices have neighbors");
        let committed = match ctx.state.committed {
            Some(r) => Some(r),
            None if best > my_id => Some(ctx.round),
            None => None,
        };
        let next = LeState { best, committed };
        // After ⌈n/2⌉ + 1 rounds the maximum ID has reached every vertex;
        // everyone terminates, leaders being those that never saw larger.
        if ctx.round > (ctx.graph.n() as u32).div_ceil(2) {
            let out = LeOut {
                commit_round: committed.unwrap_or(ctx.round),
                is_leader: committed.is_none(),
            };
            Transition::Terminate(next, out)
        } else {
            Transition::Continue(next)
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        g.n() as u32 + 4
    }
}

/// Cole–Vishkin 3-coloring of an oriented cycle.
///
/// The orientation is by vertex index (successor `(v+1) mod n`, matching
/// [`graphcore::gen::cycle`]). Colors start as IDs; each round, a vertex
/// compares its color with its successor's bit-by-bit and encodes
/// (position, bit) — dropping the palette from `p` to `O(log p)` — until
/// six colors remain; three final rounds retire colors 5, 4, 3 by greedy
/// re-pick. Every vertex runs the full schedule: vertex-averaged =
/// worst-case = `Θ(log* n)`, the paper's §3 negative example.
#[derive(Clone, Copy, Debug, Default)]
pub struct RingThreeColoring;

/// State and message alike: the current color (the whole state is
/// neighbor-visible, so it travels as-is).
pub type CvState = u64;

/// Number of Cole–Vishkin reduction rounds needed from palette `p` down
/// to ≤ 6 colors.
pub fn cv_rounds(p: u64) -> u32 {
    let mut p = p.max(2);
    let mut rounds = 0;
    while p > 6 {
        let bits = 64 - (p - 1).leading_zeros() as u64;
        p = 2 * bits;
        rounds += 1;
        assert!(rounds < 64, "CV reduction must converge");
    }
    rounds
}

/// One Cole–Vishkin step: the lowest bit position where `mine` and
/// `succ` differ, paired with my bit there.
fn cv_step(mine: u64, succ: u64) -> u64 {
    debug_assert_ne!(mine, succ, "CV requires a proper coloring");
    let pos = (mine ^ succ).trailing_zeros() as u64;
    2 * pos + ((mine >> pos) & 1)
}

impl RingThreeColoring {
    /// My successor on the oriented ring: the neighbor `(v + 1) mod n`.
    /// Cole–Vishkin requires a consistently oriented cycle; this protocol
    /// takes the canonical orientation of [`graphcore::gen::cycle`] and
    /// fails loudly (rather than silently mis-coloring) on any other
    /// vertex labeling.
    fn successor(g: &Graph, v: VertexId) -> VertexId {
        let n = g.n() as VertexId;
        let s = (v + 1) % n;
        assert!(
            g.has_edge(v, s),
            "RingThreeColoring needs the canonical cycle orientation \
             (vertex v adjacent to (v+1) mod n)"
        );
        s
    }

    /// Total schedule: CV reductions + 3 shoot-down rounds.
    pub fn rounds(&self, ids: &IdAssignment) -> u32 {
        cv_rounds(ids.id_space().max(2)) + 3
    }
}

impl Protocol for RingThreeColoring {
    type State = CvState;
    type Msg = CvState;
    type Output = u64;

    fn init(&self, g: &Graph, ids: &IdAssignment, v: VertexId) -> CvState {
        assert_eq!(g.degree(v), 2, "ring coloring runs on cycles");
        ids.id(v)
    }

    fn publish(&self, state: &CvState) -> CvState {
        *state
    }

    fn step(&self, ctx: StepCtx<'_, CvState>) -> Transition<CvState, u64> {
        let total_cv = cv_rounds(ctx.ids.id_space().max(2));
        let i = ctx.round - 1;
        let next = if i < total_cv {
            let succ = Self::successor(ctx.graph, ctx.v);
            cv_step(*ctx.state, *ctx.view.msg_of(succ))
        } else {
            // Shoot-down: colors 5, 4, 3 re-pick in separate rounds.
            let target = 5 - (i - total_cv) as u64; // 5, then 4, then 3
            if *ctx.state == target {
                let used: Vec<u64> = ctx.view.neighbors().map(|(_, &s)| s).collect();
                (0..3)
                    .find(|c| !used.contains(c))
                    .expect("3 colors vs 2 neighbors")
            } else {
                *ctx.state
            }
        };
        if ctx.round >= total_cv + 3 {
            Transition::Terminate(next, next)
        } else {
            Transition::Continue(next)
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        cv_rounds(g.n().max(2) as u64) + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn commit_metrics(out: &simlocal::SimOutcome<LeOut>) -> simlocal::RoundMetrics {
        let commits: Vec<u32> = out.outputs.iter().map(|o| o.commit_round).collect();
        crate::extension::metrics_from_commits(&commits)
    }

    #[test]
    fn leader_election_unique_leader() {
        for n in [3usize, 10, 257] {
            let g = gen::cycle(n);
            let ids = IdAssignment::identity(n);
            let out = simlocal::Runner::new(&LeaderElection, &g, &ids)
                .run()
                .unwrap();
            let leaders: Vec<_> = g
                .vertices()
                .filter(|&v| out.outputs[v as usize].is_leader)
                .collect();
            assert_eq!(leaders, vec![n as u32 - 1], "max-ID vertex must win");
            out.metrics.check_identities().unwrap();
        }
    }

    #[test]
    fn leader_election_unique_leader_random_ids() {
        let mut rng = ChaCha8Rng::seed_from_u64(303);
        for n in [64usize, 1024] {
            let g = gen::cycle(n);
            let ids = IdAssignment::random_permutation(n, &mut rng);
            let out = simlocal::Runner::new(&LeaderElection, &g, &ids)
                .run()
                .unwrap();
            let leaders: Vec<_> = g
                .vertices()
                .filter(|&v| out.outputs[v as usize].is_leader)
                .collect();
            assert_eq!(leaders.len(), 1);
            assert_eq!(ids.id(leaders[0]), n as u64 - 1);
        }
    }

    #[test]
    fn leader_election_commit_va_below_worst_case() {
        // Feuilloley's separation: WC Θ(n), commit-VA O(log n).
        let mut rng = ChaCha8Rng::seed_from_u64(300);
        let n = 4096;
        let g = gen::cycle(n);
        let ids = IdAssignment::random_permutation(n, &mut rng);
        let out = simlocal::Runner::new(&LeaderElection, &g, &ids)
            .run()
            .unwrap();
        let m = commit_metrics(&out);
        let va = m.vertex_averaged();
        let wc = m.worst_case();
        assert!(wc >= (n as u32) / 2, "leader commits at ~n/2: wc={wc}");
        assert!(va <= 20.0, "commit VA should be O(log n): va={va}");
    }

    #[test]
    fn leader_election_sorted_ids_commit_fast() {
        // Sorted IDs: every non-max vertex sees a larger neighbor
        // immediately; nearly everyone commits in round 1.
        let n = 1024;
        let g = gen::cycle(n);
        let ids = IdAssignment::identity(n);
        let out = simlocal::Runner::new(&LeaderElection, &g, &ids)
            .run()
            .unwrap();
        let quick = out.outputs.iter().filter(|o| o.commit_round <= 2).count();
        assert!(quick as f64 > 0.95 * n as f64);
    }

    #[test]
    fn cv_rounds_is_log_star_like() {
        assert_eq!(cv_rounds(6), 0);
        assert!(cv_rounds(1 << 16) <= 4);
        assert!(cv_rounds(u64::MAX) <= 6);
        assert!(cv_rounds(1 << 60) >= cv_rounds(1 << 8));
    }

    #[test]
    fn ring_three_coloring_proper_with_three_colors() {
        for n in [3usize, 5, 64, 501] {
            let g = gen::cycle(n);
            let ids = IdAssignment::identity(n);
            let out = simlocal::Runner::new(&RingThreeColoring, &g, &ids)
                .run()
                .unwrap();
            verify::assert_ok(verify::proper_vertex_coloring(&g, &out.outputs, 3));
            assert!(out.outputs.iter().all(|&c| c < 3));
        }
    }

    #[test]
    fn ring_three_coloring_va_equals_worst_case() {
        // The §3 negative result: no early retirement on rings.
        let g = gen::cycle(2048);
        let ids = IdAssignment::identity(2048);
        let out = simlocal::Runner::new(&RingThreeColoring, &g, &ids)
            .run()
            .unwrap();
        assert_eq!(
            out.metrics.vertex_averaged(),
            out.metrics.worst_case() as f64
        );
        // And the schedule is log*-short.
        assert!(out.metrics.worst_case() <= 10);
    }

    #[test]
    fn cv_schedule_runs_to_its_declared_length() {
        let g = gen::cycle(97);
        let ids = IdAssignment::identity(97);
        let p = RingThreeColoring;
        let rounds = p.rounds(&ids);
        assert!(rounds >= 3);
        let out = simlocal::Runner::new(&p, &g, &ids).run().unwrap();
        assert_eq!(out.metrics.worst_case(), rounds);
    }
}
