//! §7.8 — Procedure One-Plus-Eta-Arb-Col: `O(a^{1+η})`-vertex-coloring
//! with vertex-averaged complexity polylogarithmic-in-`n` (Theorem 7.21).
//!
//! The recursion: at level `ℓ` (arboricity budget `a_ℓ = ⌊a/C^{ℓ-1}⌋`),
//! each current subgraph runs `r = ⌈2 log log n⌉` rounds of Procedure
//! Partition. The vertices that joined one of the `r` H-sets form `H`;
//! Procedure H-Arbdefective-Coloring splits them into `q = 5C` groups of
//! arboricity ≤ `a_{ℓ+1}` each (every vertex waits for its parents under
//! the partial orientation and takes the group least used among them),
//! and each group recurses as its own subgraph. The `O(n / log² n)`
//! residual vertices run Procedure Arb-Color on their residual subgraph.
//! When the budget drops below `C`, the leaf subgraphs are colored with
//! the two-phase `O(a²)` algorithm of §7.3.
//!
//! A subgraph is identified by its **prefix string** (the group chosen at
//! each level); two neighbors interact at level `ℓ` iff their prefixes
//! agree — the distributed realization of the paper's color-string
//! argument. The final color injectively encodes (prefix, branch kind,
//! leaf color), so edges between different branches are properly colored
//! by construction and only leaf-internal edges need the leaf algorithms'
//! guarantees.
//!
//! Substitutions (DESIGN.md): the `⌊a/t⌋`-defective `O(t²)`-coloring
//! inside Procedure Partial-Orientation is replaced by a *proper* in-set
//! `(A_ℓ+1)`-coloring (a 0-defective coloring — strictly stronger, total
//! orientation, same arbdefective guarantee); Procedure
//! One-Plus-Eta-Legal-Coloring on the residual is replaced by Procedure
//! Arb-Color (fewer colors, `O(a log n)` worst case on `O(n / log² n)`
//! vertices — a vanishing vertex-averaged contribution).

use crate::inset::{DeltaPlusOneSchedule, LinialSchedule};
use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition, WireSize};
use std::sync::OnceLock;

/// What a vertex is currently doing (published alongside its prefix).
#[derive(Clone, Debug, PartialEq)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum Mode {
    /// Level partition, not yet joined (`h = None`) or joined set `h`.
    LevelPart { h: Option<u32> },
    /// Level in-set coloring with current value `c`.
    LevelInSet { h: u32, c: u64 },
    /// Waiting for parents to pick groups; `local` is the final in-set
    /// color.
    LevelWait { h: u32, local: u64 },
    /// Picked group `g`; descends when the next level starts.
    LevelPicked { h: u32, local: u64, g: u32 },
    /// Residual branch (level = `prefix.len() + 1`): partitioning.
    ResPart { h: Option<u32> },
    /// Residual in-set coloring.
    ResInSet { h: u32, c: u64 },
    /// Residual recolor wait.
    ResWait { h: u32, local: u64 },
    /// Base (§7.3) branch: partitioning.
    BasePart { h: Option<u32> },
    /// Base iterated-Linial coloring.
    BaseColor { h: u32, c: u64 },
    /// Terminal: kind 0 = base, 1 = residual; `rec` is the leaf color.
    Done {
        h: u32,
        local: u64,
        rec: u64,
        kind: u8,
    },
}

/// Published per-vertex state.
#[derive(Clone, Debug, PartialEq)]
pub struct OpeState {
    /// Groups picked at completed levels (the color-string prefix).
    pub prefix: Vec<u32>,
    /// Current activity.
    pub mode: Mode,
}

/// Per-level schedule entry.
#[derive(Clone, Copy, Debug)]
#[allow(dead_code)]
struct LevelInfo {
    /// Arboricity budget at this level.
    a: usize,
    /// Degree threshold `A_ℓ = ⌊(2+ε) a_ℓ⌋`.
    cap: usize,
    /// First round of the level.
    start: u32,
    /// In-set coloring rounds.
    d: u32,
    /// Wait/pick window length.
    w: u32,
}

/// The full deterministic timetable.
#[derive(Clone, Debug)]
struct OpeSchedule {
    /// Partition rounds per level, `r = ⌈2 log log n⌉`.
    r: u32,
    levels: Vec<LevelInfo>,
    /// First round of the base phase.
    base_start: u32,
    /// Base arboricity budget (< C) and threshold.
    base_cap: usize,
    /// Base phase-1 set count `t_b`.
    base_t: u32,
    /// Full-partition bound `L(n, ε)`.
    full: u32,
    /// Linial schedule for the base leaves.
    base_linial: LinialSchedule,
    /// In-set schedules per level (same index as `levels`) and for the
    /// residual branches.
    level_inset: Vec<DeltaPlusOneSchedule>,
}

/// The §7.8 protocol.
#[derive(Debug)]
pub struct OnePlusEtaArbCol {
    /// Known arboricity.
    pub arboricity: usize,
    /// The constant `C` of the recursion (`η = Θ(1/log C)`), ≥ 2.
    pub c_const: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    sched: OnceLock<OpeSchedule>,
}

impl OnePlusEtaArbCol {
    /// Instance with ε = 2 and the given `C`.
    pub fn new(arboricity: usize, c_const: usize) -> Self {
        assert!(c_const >= 2, "C must be at least 2");
        OnePlusEtaArbCol {
            arboricity,
            c_const,
            epsilon: 2.0,
            sched: OnceLock::new(),
        }
    }

    /// Number of groups per recursive level, `q = 5C` (the paper's
    /// `k = t = (3+ε)C` with ε = 2).
    pub fn q(&self) -> u32 {
        5 * self.c_const as u32
    }

    fn schedule(&self, n: u64, ids: &IdAssignment) -> &OpeSchedule {
        self.sched.get_or_init(|| {
            let r = (2 * itlog::iterated_log(n.max(4), 2) as u32).max(2);
            let ids_space = ids.id_space().max(2);
            let mut levels = Vec::new();
            let mut level_inset = Vec::new();
            let mut a = self.arboricity.max(1);
            let mut start = 1u32;
            while a >= self.c_const {
                let cap = degree_cap(a, self.epsilon);
                let inset = DeltaPlusOneSchedule::new(ids_space, cap as u64);
                let d = inset.rounds();
                let w = (cap as u32 + 2) * r + 2;
                levels.push(LevelInfo {
                    a,
                    cap,
                    start,
                    d,
                    w,
                });
                level_inset.push(inset);
                start += r + d + w;
                a /= self.c_const;
            }
            let base_cap = degree_cap(a.max(1), self.epsilon);
            OpeSchedule {
                r,
                levels,
                base_start: start,
                base_cap,
                base_t: (itlog::iterated_log(n.max(4), 2) as u32).max(1),
                full: itlog::partition_round_bound(n, self.epsilon),
                base_linial: LinialSchedule::new(ids_space, base_cap as u64),
                level_inset,
            }
        })
    }

    /// Injective encoding of (prefix, kind, leaf color) into one `u64`.
    pub fn encode(&self, prefix: &[u32], kind: u8, rec: u64) -> u64 {
        let q = self.q() as u64;
        let mut enc: u64 = 1;
        for &g in prefix {
            enc = enc * (q + 2) + (g as u64 + 1);
        }
        enc = enc * 2 + kind as u64;
        // Leaf colors are bounded by max(2·base fixpoint, caps + 1); use a
        // fixed generous modulus so decoding is well-defined.
        enc * (1 << 20) + rec
    }

    /// Loose palette bound for verification: distinct encodings possible.
    pub fn palette_bound(&self, n: u64, ids: &IdAssignment) -> u64 {
        let s = self.schedule(n, ids);
        let q = self.q() as u64;
        let depth = s.levels.len() as u32;
        // Branch count ≤ Σ_{ℓ≤depth} q^ℓ · 2 and leaf colors < 2^20;
        // the bound is deliberately loose — tests count used colors.
        (q + 2).pow(depth + 1) * 2 * (1 << 20)
    }
}

/// Branch comparison: are two vertices currently in the same subgraph for
/// the purposes of `my` (prefix equality plus compatible mode family)?
fn same_level_branch(my_prefix: &[u32], other: &OpeState) -> bool {
    my_prefix == other.prefix.as_slice()
        && matches!(
            other.mode,
            Mode::LevelPart { .. }
                | Mode::LevelInSet { .. }
                | Mode::LevelWait { .. }
                | Mode::LevelPicked { .. }
        )
}

fn same_res_branch(my_prefix: &[u32], other: &OpeState) -> bool {
    my_prefix == other.prefix.as_slice()
        && matches!(
            other.mode,
            Mode::ResPart { .. }
                | Mode::ResInSet { .. }
                | Mode::ResWait { .. }
                | Mode::Done { kind: 1, .. }
        )
}

fn same_base_branch(my_prefix: &[u32], other: &OpeState) -> bool {
    my_prefix == other.prefix.as_slice()
        && matches!(
            other.mode,
            Mode::BasePart { .. } | Mode::BaseColor { .. } | Mode::Done { kind: 0, .. }
        )
}

impl WireSize for Mode {
    fn wire_bits(&self) -> u64 {
        // 4-bit tag for ten variants, then the payload.
        4 + match self {
            Mode::LevelPart { h } | Mode::ResPart { h } | Mode::BasePart { h } => h.wire_bits(),
            Mode::LevelInSet { h, c } | Mode::ResInSet { h, c } | Mode::BaseColor { h, c } => {
                h.wire_bits() + c.wire_bits()
            }
            Mode::LevelWait { h, local } | Mode::ResWait { h, local } => {
                h.wire_bits() + local.wire_bits()
            }
            Mode::LevelPicked { h, local, g } => h.wire_bits() + local.wire_bits() + g.wire_bits(),
            Mode::Done {
                h,
                local,
                rec,
                kind,
            } => h.wire_bits() + local.wire_bits() + rec.wire_bits() + kind.wire_bits(),
        }
    }
}

impl WireSize for OpeState {
    fn wire_bits(&self) -> u64 {
        self.prefix.wire_bits() + self.mode.wire_bits()
    }
}

impl Protocol for OnePlusEtaArbCol {
    type State = OpeState;
    // Every field is neighbor-read: the branch predicates compare full
    // prefixes, and each mode payload schedules some peer. Nothing to trim.
    type Msg = OpeState;
    type Output = u64;

    fn init(&self, g: &Graph, ids: &IdAssignment, _: VertexId) -> OpeState {
        let s = self.schedule(g.n() as u64, ids);
        let mode = if s.levels.is_empty() {
            Mode::BasePart { h: None }
        } else {
            Mode::LevelPart { h: None }
        };
        OpeState {
            prefix: Vec::new(),
            mode,
        }
    }

    fn publish(&self, state: &OpeState) -> OpeState {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, OpeState>) -> Transition<OpeState, u64> {
        let n = ctx.graph.n() as u64;
        let s = self.schedule(n, ctx.ids);
        let st = ctx.state.clone();
        match st.mode {
            Mode::LevelPart { .. }
            | Mode::LevelInSet { .. }
            | Mode::LevelWait { .. }
            | Mode::LevelPicked { .. } => self.level_step(&ctx, s, st),
            Mode::ResPart { .. } | Mode::ResInSet { .. } | Mode::ResWait { .. } => {
                self.residual_step(&ctx, s, st)
            }
            Mode::BasePart { .. } | Mode::BaseColor { .. } => self.base_step(&ctx, s, st),
            Mode::Done { .. } => unreachable!("terminal"),
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let n = g.n() as u64;
        let ids = IdAssignment::identity(g.n().max(1));
        let s = self.schedule(n, &ids);
        // Residual branches end by their start + L + d + cascade; the base
        // ends by base_start + L + linial; take a generous union bound.
        let tail = s.full
            + DeltaPlusOneSchedule::new(n.max(2), degree_cap(self.arboricity, 2.0) as u64).rounds()
            + (degree_cap(self.arboricity, 2.0) as u32 + 2) * (s.full + 2)
            + s.base_linial.rounds();
        s.base_start + tail + 64
    }
}

impl OnePlusEtaArbCol {
    /// Steps a vertex inside recursive level `ℓ = prefix.len() + 1`.
    fn level_step(
        &self,
        ctx: &StepCtx<'_, OpeState>,
        s: &OpeSchedule,
        st: OpeState,
    ) -> Transition<OpeState, u64> {
        let lev = st.prefix.len();
        let info = s.levels[lev];
        let prefix = &st.prefix;
        let round = ctx.round;
        match st.mode {
            Mode::LevelPart { h: None } => {
                // Partition window: [start, start + r).
                if round >= info.start + s.r {
                    // Did not join: branch to the residual.
                    return Transition::Continue(OpeState {
                        prefix: st.prefix.clone(),
                        mode: Mode::ResPart { h: None },
                    });
                }
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, o)| {
                        same_level_branch(prefix, o)
                            && matches!(o.mode, Mode::LevelPart { h: None })
                    })
                    .count();
                let mode = if partition_step(active, info.cap) {
                    Mode::LevelPart {
                        h: Some(round - info.start + 1),
                    }
                } else {
                    Mode::LevelPart { h: None }
                };
                Transition::Continue(OpeState {
                    prefix: st.prefix.clone(),
                    mode,
                })
            }
            Mode::LevelPart { h: Some(h) } => {
                // Wait for the in-set coloring window, then run it.
                let cstart = info.start + s.r;
                if round < cstart {
                    return Transition::Continue(st);
                }
                self.level_inset_step(ctx, s, st.prefix.clone(), h, ctx.my_id(), round - cstart)
            }
            Mode::LevelInSet { h, c } => {
                let cstart = info.start + s.r;
                self.level_inset_step(ctx, s, st.prefix.clone(), h, c, round - cstart)
            }
            Mode::LevelWait { h, local } => {
                // Arbdefective pick: wait for all parents within the
                // level's H-union to pick their groups.
                let q = self.q();
                let mut counts = vec![0u32; q as usize];
                for (_, o) in ctx.view.neighbors() {
                    if !same_level_branch(prefix, o) {
                        continue;
                    }
                    match o.mode {
                        Mode::LevelPart { h: None } => {}
                        Mode::LevelPart { h: Some(j) } | Mode::LevelInSet { h: j, .. }
                            // Still coloring: every joined peer is a
                            // potential parent — wait.
                            if j >= h => {
                                return Transition::Continue(st);
                            }
                        Mode::LevelWait { h: j, local: l2 }
                            if (j > h || (j == h && l2 > local)) => {
                                return Transition::Continue(st);
                            }
                        Mode::LevelPicked { h: j, local: l2, g }
                            if (j > h || (j == h && l2 > local)) => {
                                counts[g as usize] += 1;
                            }
                        _ => {}
                    }
                }
                let g = counts
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, c)| *c)
                    .map(|(i, _)| i as u32)
                    .expect("q ≥ 1 groups");
                Transition::Continue(OpeState {
                    prefix: st.prefix.clone(),
                    mode: Mode::LevelPicked { h, local, g },
                })
            }
            Mode::LevelPicked { h, local, g } => {
                // Descend when the next phase (level ℓ+1 or base) starts.
                let next_start = s
                    .levels
                    .get(lev + 1)
                    .map(|l| l.start)
                    .unwrap_or(s.base_start);
                if round < next_start {
                    return Transition::Continue(OpeState {
                        prefix: st.prefix.clone(),
                        mode: Mode::LevelPicked { h, local, g },
                    });
                }
                let mut prefix = st.prefix.clone();
                prefix.push(g);
                let mode = if lev + 1 < s.levels.len() {
                    Mode::LevelPart { h: None }
                } else {
                    Mode::BasePart { h: None }
                };
                Transition::Continue(OpeState { prefix, mode })
            }
            _ => unreachable!(),
        }
    }

    fn level_inset_step(
        &self,
        ctx: &StepCtx<'_, OpeState>,
        s: &OpeSchedule,
        prefix: Vec<u32>,
        h: u32,
        cur: u64,
        i: u32,
    ) -> Transition<OpeState, u64> {
        let lev = prefix.len();
        let inset = &s.level_inset[lev];
        let d = inset.rounds();
        if i >= d {
            return Transition::Continue(OpeState {
                prefix,
                mode: Mode::LevelWait {
                    h,
                    local: inset.finish(cur),
                },
            });
        }
        let peers: Vec<u64> = ctx
            .view
            .neighbors()
            .filter_map(|(u, o)| {
                if !same_level_branch(&prefix, o) {
                    return None;
                }
                match o.mode {
                    Mode::LevelInSet { h: j, c } if j == h => Some(c),
                    Mode::LevelPart { h: Some(j) } if j == h => Some(ctx.ids.id(u)),
                    _ => None,
                }
            })
            .collect();
        let next = inset.step(i, cur, &peers);
        let mode = if i + 1 == d {
            Mode::LevelWait {
                h,
                local: inset.finish(next),
            }
        } else {
            Mode::LevelInSet { h, c: next }
        };
        Transition::Continue(OpeState { prefix, mode })
    }

    /// Residual (Arb-Color) branch at level `prefix.len() + 1`.
    fn residual_step(
        &self,
        ctx: &StepCtx<'_, OpeState>,
        s: &OpeSchedule,
        st: OpeState,
    ) -> Transition<OpeState, u64> {
        let lev = st.prefix.len();
        let info = s.levels[lev];
        let rs = info.start + s.r; // residual branch start
        let prefix = &st.prefix;
        let round = ctx.round;
        match st.mode {
            Mode::ResPart { h: None } => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, o)| {
                        same_res_branch(prefix, o) && matches!(o.mode, Mode::ResPart { h: None })
                    })
                    .count();
                let mode = if partition_step(active, info.cap) {
                    Mode::ResPart {
                        h: Some(round - rs + 1),
                    }
                } else {
                    Mode::ResPart { h: None }
                };
                Transition::Continue(OpeState {
                    prefix: st.prefix.clone(),
                    mode,
                })
            }
            Mode::ResPart { h: Some(h) } => {
                // In-set coloring window opens after the full partition
                // bound (everyone has a set by then).
                let cstart = rs + s.full + 1;
                if round < cstart {
                    return Transition::Continue(st);
                }
                self.res_inset_step(ctx, s, st.prefix.clone(), h, ctx.my_id(), round - cstart)
            }
            Mode::ResInSet { h, c } => {
                let cstart = rs + s.full + 1;
                self.res_inset_step(ctx, s, st.prefix.clone(), h, c, round - cstart)
            }
            Mode::ResWait { h, local } => {
                // Recolor: wait for parents (same-set higher local color
                // or later set) in the residual branch, then take the
                // smallest free color of {0..cap}.
                let mut used = vec![false; info.cap + 1];
                for (_, o) in ctx.view.neighbors() {
                    if !same_res_branch(prefix, o) {
                        continue;
                    }
                    match o.mode {
                        Mode::ResPart { .. } | Mode::ResInSet { .. } => {
                            return Transition::Continue(st)
                        }
                        Mode::ResWait { h: j, local: l2 } if (j > h || (j == h && l2 > local)) => {
                            return Transition::Continue(st);
                        }
                        Mode::Done {
                            h: j,
                            local: l2,
                            rec,
                            kind: 1,
                        } if (j > h || (j == h && l2 > local)) => {
                            used[rec as usize] = true;
                        }
                        _ => {}
                    }
                }
                let rec = used
                    .iter()
                    .position(|&u| !u)
                    .expect("cap+1 palette vs ≤ cap parents") as u64;
                let value = self.encode(prefix, 1, rec);
                Transition::Terminate(
                    OpeState {
                        prefix: st.prefix.clone(),
                        mode: Mode::Done {
                            h,
                            local,
                            rec,
                            kind: 1,
                        },
                    },
                    value,
                )
            }
            _ => unreachable!(),
        }
    }

    fn res_inset_step(
        &self,
        ctx: &StepCtx<'_, OpeState>,
        s: &OpeSchedule,
        prefix: Vec<u32>,
        h: u32,
        cur: u64,
        i: u32,
    ) -> Transition<OpeState, u64> {
        let lev = prefix.len();
        let inset = &s.level_inset[lev];
        let d = inset.rounds();
        if i >= d {
            return Transition::Continue(OpeState {
                prefix,
                mode: Mode::ResWait {
                    h,
                    local: inset.finish(cur),
                },
            });
        }
        let peers: Vec<u64> = ctx
            .view
            .neighbors()
            .filter_map(|(u, o)| {
                if !same_res_branch(&prefix, o) {
                    return None;
                }
                match o.mode {
                    Mode::ResInSet { h: j, c } if j == h => Some(c),
                    Mode::ResPart { h: Some(j) } if j == h => Some(ctx.ids.id(u)),
                    _ => None,
                }
            })
            .collect();
        let next = inset.step(i, cur, &peers);
        let mode = if i + 1 == d {
            Mode::ResWait {
                h,
                local: inset.finish(next),
            }
        } else {
            Mode::ResInSet { h, c: next }
        };
        Transition::Continue(OpeState { prefix, mode })
    }

    /// Base (§7.3 two-phase) branch within a leaf subgraph.
    fn base_step(
        &self,
        ctx: &StepCtx<'_, OpeState>,
        s: &OpeSchedule,
        st: OpeState,
    ) -> Transition<OpeState, u64> {
        let prefix = &st.prefix;
        let round = ctx.round;
        let bs = s.base_start;
        match st.mode {
            Mode::BasePart { h: None } => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, o)| {
                        same_base_branch(prefix, o) && matches!(o.mode, Mode::BasePart { h: None })
                    })
                    .count();
                let mode = if partition_step(active, s.base_cap) {
                    Mode::BasePart {
                        h: Some(round - bs + 1),
                    }
                } else {
                    Mode::BasePart { h: None }
                };
                Transition::Continue(OpeState {
                    prefix: st.prefix.clone(),
                    mode,
                })
            }
            Mode::BasePart { h: Some(h) } => {
                let start = self.base_window_start(s, h);
                if round < start {
                    return Transition::Continue(st);
                }
                self.base_color_step(ctx, s, st.prefix.clone(), h, ctx.my_id(), round - start)
            }
            Mode::BaseColor { h, c } => {
                let start = self.base_window_start(s, h);
                self.base_color_step(ctx, s, st.prefix.clone(), h, c, round - start)
            }
            _ => unreachable!(),
        }
    }

    /// Start round of the base-phase Linial window for base set `h`.
    fn base_window_start(&self, s: &OpeSchedule, h: u32) -> u32 {
        if h <= s.base_t {
            s.base_start + s.base_t + 1
        } else {
            s.base_start + s.full.max(s.base_t) + 1
        }
    }

    fn base_color_step(
        &self,
        ctx: &StepCtx<'_, OpeState>,
        s: &OpeSchedule,
        prefix: Vec<u32>,
        h: u32,
        cur: u64,
        i: u32,
    ) -> Transition<OpeState, u64> {
        let sched = &s.base_linial;
        let phase_bit = u64::from(h > s.base_t);
        if i >= sched.rounds() {
            let rec = 2 * cur + phase_bit;
            let value = self.encode(&prefix, 0, rec);
            return Transition::Terminate(
                OpeState {
                    prefix,
                    mode: Mode::Done {
                        h,
                        local: cur,
                        rec,
                        kind: 0,
                    },
                },
                value,
            );
        }
        let my_id = ctx.my_id();
        let in_my_phase = |j: u32| (j <= s.base_t) == (h <= s.base_t);
        let parents: Vec<u64> = ctx
            .view
            .neighbors()
            .filter_map(|(u, o)| {
                if !same_base_branch(&prefix, o) {
                    return None;
                }
                let (j, col) = match o.mode {
                    Mode::BasePart { h: Some(j) } => (j, ctx.ids.id(u)),
                    Mode::BaseColor { h: j, c } => (j, c),
                    _ => return None,
                };
                (in_my_phase(j) && (j > h || (j == h && ctx.ids.id(u) > my_id))).then_some(col)
            })
            .collect();
        let next = sched.step(i, cur, &parents);
        if i + 1 == sched.rounds() {
            let rec = 2 * next + phase_bit;
            let value = self.encode(&prefix, 0, rec);
            Transition::Terminate(
                OpeState {
                    prefix,
                    mode: Mode::Done {
                        h,
                        local: next,
                        rec,
                        kind: 0,
                    },
                },
                value,
            )
        } else {
            Transition::Continue(OpeState {
                prefix,
                mode: Mode::BaseColor { h, c: next },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_and_verify(g: &Graph, a: usize, c: usize) -> (f64, u32, usize) {
        let p = OnePlusEtaArbCol::new(a, c);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(g, &out.outputs, usize::MAX));
        out.metrics.check_identities().unwrap();
        (
            out.metrics.vertex_averaged(),
            out.metrics.worst_case(),
            verify::count_distinct(&out.outputs),
        )
    }

    #[test]
    fn base_only_when_a_below_c() {
        // a < C: pure base (§7.3) path.
        run_and_verify(&gen::path(120), 1, 4);
        run_and_verify(&gen::grid(10, 11), 2, 4);
    }

    #[test]
    fn one_recursive_level() {
        let mut rng = ChaCha8Rng::seed_from_u64(160);
        let gg = gen::forest_union(600, 4, &mut rng);
        run_and_verify(&gg.graph, 4, 4);
    }

    #[test]
    fn two_recursive_levels() {
        let mut rng = ChaCha8Rng::seed_from_u64(161);
        let gg = gen::forest_union(800, 16, &mut rng);
        run_and_verify(&gg.graph, 16, 4);
    }

    #[test]
    fn proper_across_c_values() {
        let mut rng = ChaCha8Rng::seed_from_u64(162);
        let gg = gen::forest_union(700, 8, &mut rng);
        for c in [2usize, 4, 8] {
            run_and_verify(&gg.graph, 8, c);
        }
    }

    #[test]
    fn color_count_reasonable() {
        // Colors should scale with a^(1+η)·poly(C), far below n.
        let mut rng = ChaCha8Rng::seed_from_u64(163);
        let gg = gen::forest_union(4000, 8, &mut rng);
        let (_, _, used) = run_and_verify(&gg.graph, 8, 4);
        assert!(used < 1200, "used {used} colors for a=8 on n=4000");
    }

    #[test]
    fn va_grows_like_loglog_not_log() {
        // The §7.8 separation is in the growth rate over n: the recursive
        // descent costs O(log a · log log n) per vertex (every vertex pays
        // the level windows), while the classical [5]-style execution pays
        // O(log a · log n). Between n = 1k and n = 64k, log n doubles+
        // while log log n moves by ~1 — VA growth must stay small.
        let mut rng = ChaCha8Rng::seed_from_u64(164);
        let g1 = gen::forest_union(1024, 8, &mut rng);
        let g2 = gen::forest_union(32768, 8, &mut rng);
        let (va1, wc1, _) = run_and_verify(&g1.graph, 8, 4);
        let (va2, wc2, _) = run_and_verify(&g2.graph, 8, 4);
        assert!(va1 <= wc1 as f64 && va2 <= wc2 as f64);
        assert!(va2 <= va1 * 1.4 + 8.0, "VA grew too fast: {va1} -> {va2}");
    }

    #[test]
    fn encoding_is_injective_on_samples() {
        let p = OnePlusEtaArbCol::new(16, 4);
        let mut seen = std::collections::HashSet::new();
        for prefix in [vec![], vec![0], vec![1], vec![0, 0], vec![0, 19]] {
            for kind in [0u8, 1] {
                for rec in [0u64, 1, 77] {
                    assert!(
                        seen.insert(p.encode(&prefix, kind, rec)),
                        "collision at {prefix:?} {kind} {rec}"
                    );
                }
            }
        }
    }
}
