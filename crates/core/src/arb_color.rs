//! Procedure Arb-Color — the classical `O(a)`-coloring of \[8\]
//! (Theorem 5.15 of \[4\]), worst case `O(a log n)`.
//!
//! This is the "previous running time" baseline for Table 1's `O(ka)` row
//! and the residual-subgraph subroutine of §7.8: full Procedure Partition
//! (every H-set must exist before recoloring can begin, so *every* vertex
//! stays active for `Ω(log n)` rounds — the cost the paper's algorithms
//! avoid), an in-set `(Δ+1)`-coloring of each `G(H_i)` in parallel, and a
//! single global recoloring cascade over the acyclic orientation
//! (in-set toward the higher in-set color, cross-set toward the later set)
//! with the `A + 1`-color palette.
//!
//! The protocol also runs on an *induced subgraph*: a membership predicate
//! restricts which neighbors exist. §7.8 uses this to color `G(V ∖ H)`
//! fragments identified by prefix strings.

use crate::inset::DeltaPlusOneSchedule;
use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use simlocal::{Protocol, StepCtx, Transition, WireSize};
use std::sync::OnceLock;

/// Per-vertex state.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum SArb {
    /// Running Procedure Partition.
    Active,
    /// In H-set `h`, running the in-set coloring.
    InSet { h: u32, c: u64 },
    /// Holding in-set color `local`, waiting for the recolor window and
    /// its parents.
    Wait { h: u32, local: u64 },
    /// Recolored (terminal).
    Done { h: u32, local: u64, rec: u64 },
}

impl WireSize for SArb {
    fn wire_bits(&self) -> u64 {
        // 2-bit tag for four variants, then the payload.
        match self {
            SArb::Active => 2,
            SArb::InSet { h, c } => 2 + h.wire_bits() + c.wire_bits(),
            SArb::Wait { h, local } => 2 + h.wire_bits() + local.wire_bits(),
            SArb::Done { h, local, rec } => 2 + h.wire_bits() + local.wire_bits() + rec.wire_bits(),
        }
    }
}

/// Procedure Arb-Color on the whole graph.
#[derive(Debug)]
pub struct ArbColor {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
    sched: OnceLock<DeltaPlusOneSchedule>,
}

impl ArbColor {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize) -> Self {
        ArbColor {
            arboricity,
            epsilon: 2.0,
            sched: OnceLock::new(),
        }
    }

    /// Degree threshold `A`; the final palette is `A + 1` colors.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    /// Palette size `A + 1 = O(a)`.
    pub fn palette(&self) -> u64 {
        self.cap() as u64 + 1
    }

    fn schedule(&self, ids: &IdAssignment) -> &DeltaPlusOneSchedule {
        self.sched
            .get_or_init(|| DeltaPlusOneSchedule::new(ids.id_space().max(2), self.cap() as u64))
    }

    fn full_rounds(&self, n: u64) -> u32 {
        itlog::partition_round_bound(n, self.epsilon)
    }
}

impl Protocol for ArbColor {
    type State = SArb;
    type Msg = SArb;
    type Output = u64;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> SArb {
        SArb::Active
    }

    fn publish(&self, state: &SArb) -> SArb {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, SArb>) -> Transition<SArb, u64> {
        let _n = ctx.graph.n() as u64;
        let sched = self.schedule(ctx.ids);
        let d = sched.rounds();
        match ctx.state.clone() {
            SArb::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, SArb::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(SArb::InSet {
                        h: ctx.round,
                        c: ctx.my_id(),
                    })
                } else {
                    Transition::Continue(SArb::Active)
                }
            }
            SArb::InSet { h, c } => {
                let i = ctx.round - h - 1;
                if i >= d {
                    return self.wait_or_recolor(&ctx, d, h, sched.finish(c));
                }
                let peers: Vec<u64> = ctx
                    .view
                    .neighbors()
                    .filter_map(|(_, s)| match s {
                        SArb::InSet { h: j, c } if *j == h => Some(*c),
                        _ => None,
                    })
                    .collect();
                let next = sched.step(i, c, &peers);
                if i + 1 == d {
                    Transition::Continue(SArb::Wait {
                        h,
                        local: sched.finish(next),
                    })
                } else {
                    Transition::Continue(SArb::InSet { h, c: next })
                }
            }
            SArb::Wait { h, local } => self.wait_or_recolor(&ctx, d, h, local),
            SArb::Done { .. } => unreachable!("terminal"),
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let n = g.n() as u64;
        let d = DeltaPlusOneSchedule::new(n.max(2), self.cap() as u64).rounds();
        let l = self.full_rounds(n);
        l + d + (self.cap() as u32 + 1) * (l + 1) + 16
    }
}

impl ArbColor {
    fn wait_or_recolor(
        &self,
        ctx: &StepCtx<'_, SArb>,
        d: u32,
        h: u32,
        my_local: u64,
    ) -> Transition<SArb, u64> {
        let n = ctx.graph.n() as u64;
        let stay = SArb::Wait { h, local: my_local };
        // Single global window: all sets formed by L, all in-set colorings
        // done d rounds later.
        if ctx.round <= self.full_rounds(n) + d {
            return Transition::Continue(stay);
        }
        let mut used = vec![false; self.cap() + 1];
        for (_, s) in ctx.view.neighbors() {
            match s {
                SArb::Active => unreachable!("partition finished by the window"),
                SArb::InSet { .. } => return Transition::Continue(stay),
                SArb::Wait { h: j, local } => {
                    if *j > h || (*j == h && *local > my_local) {
                        return Transition::Continue(stay);
                    }
                }
                SArb::Done { h: j, local, rec } => {
                    if *j > h || (*j == h && *local > my_local) {
                        used[*rec as usize] = true;
                    }
                }
            }
        }
        let rec = used
            .iter()
            .position(|&u| !u)
            .expect("A+1 palette vs ≤ A parents") as u64;
        Transition::Terminate(
            SArb::Done {
                h,
                local: my_local,
                rec,
            },
            rec,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_and_verify(g: &Graph, a: usize) -> (f64, u32) {
        let p = ArbColor::new(a);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            g,
            &out.outputs,
            p.palette() as usize,
        ));
        (out.metrics.vertex_averaged(), out.metrics.worst_case())
    }

    #[test]
    fn proper_on_families() {
        run_and_verify(&gen::path(100), 1);
        run_and_verify(&gen::cycle(101), 2);
        run_and_verify(&gen::grid(9, 11), 2);
        let mut rng = ChaCha8Rng::seed_from_u64(80);
        for a in [2usize, 4] {
            let gg = gen::forest_union(700, a, &mut rng);
            run_and_verify(&gg.graph, a);
        }
    }

    #[test]
    fn every_vertex_pays_the_partition() {
        // The baseline's VA is pinned at ≥ L(n): the gap the paper's
        // algorithms exploit.
        let mut rng = ChaCha8Rng::seed_from_u64(81);
        let gg = gen::forest_union(4096, 2, &mut rng);
        let p = ArbColor::new(2);
        let ids = IdAssignment::identity(4096);
        let out = simlocal::Runner::new(&p, &gg.graph, &ids).run().unwrap();
        let l = itlog::partition_round_bound(4096, 2.0) as f64;
        assert!(out.metrics.vertex_averaged() >= l);
    }

    #[test]
    fn palette_is_a_plus_one_scale() {
        assert_eq!(ArbColor::new(2).palette(), 9);
        assert_eq!(ArbColor::new(5).palette(), 21);
    }

    #[test]
    fn va_grows_with_n_unlike_the_new_algorithms() {
        let mut rng = ChaCha8Rng::seed_from_u64(82);
        let g1 = gen::forest_union(512, 2, &mut rng);
        let g2 = gen::forest_union(8192, 2, &mut rng);
        let (va1, _) = run_and_verify(&g1.graph, 2);
        let (va2, _) = run_and_verify(&g2.graph, 2);
        assert!(
            va2 > va1 + 2.0,
            "baseline VA should grow with n: {va1} -> {va2}"
        );
    }
}
