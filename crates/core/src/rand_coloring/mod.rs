//! Randomized algorithms of §9.
pub mod a_loglog;
pub mod delta_plus_one;
