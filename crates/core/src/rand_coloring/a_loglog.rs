//! §9.3 — randomized `O(a log log n)`-vertex-coloring with `O(1)`
//! vertex-averaged complexity w.h.p. (Theorem 9.2).
//!
//! Two phases around `t = ⌊2 log log n⌋` H-sets:
//!
//! 1. Upon formation of `H_i` (`i ≤ t`), its members run the §9.2
//!    propose/resolve game *within the set* with palette `{0..A}`; the
//!    final color is the pair `⟨c, i⟩` — a disjoint palette copy per set,
//!    so cross-set edges inside phase 1 are safe by construction. Most
//!    vertices finish here in `O(1)` expected phases.
//! 2. The `O(n / log² n)` survivors share a *single* extra palette copy
//!    and are processed from the last H-set backwards: a vertex proposes
//!    only once all its neighbors in later sets (and its not-yet-joined
//!    neighbors) have finalized, avoiding their colors — possible because
//!    it has at most `A` neighbors in `H_{≥j}` and the copy has `A + 1`
//!    colors.
//!
//! Total palette `(t + 1)(A + 1) = O(a log log n)`; the phase-2 tail costs
//! `O(log² n)` rounds w.h.p. but touches `O(n / log² n)` vertices, keeping
//! the vertex-averaged complexity `O(1)` w.h.p.

use crate::itlog;
use crate::partition::{degree_cap, partition_step};
use graphcore::{Graph, IdAssignment, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;
use simlocal::{Protocol, StepCtx, Transition, WireSize};

/// Per-vertex state.
#[derive(Clone, Debug)]
/// Field conventions: `h` is the 1-based H-set index, `c` a current
/// Linial/KW color value, `local` a final in-set color, `rec` a
/// recolored palette entry.
#[allow(missing_docs)] // field meanings are shared across the state machines (see the note above)
pub enum SRal {
    /// Running Procedure Partition.
    Active,
    /// In H-set `h`, no live proposal.
    Idle { h: u32 },
    /// In H-set `h`, proposed `c` this phase.
    Proposed { h: u32, c: u64 },
    /// Final (terminal): the globally encoded color.
    Final { h: u32, c: u64 },
}

impl SRal {
    fn h(&self) -> Option<u32> {
        match self {
            SRal::Active => None,
            SRal::Idle { h } | SRal::Proposed { h, .. } | SRal::Final { h, .. } => Some(*h),
        }
    }
}

impl WireSize for SRal {
    fn wire_bits(&self) -> u64 {
        // 2-bit tag for four variants, then the payload.
        match self {
            SRal::Active => 2,
            SRal::Idle { h } => 2 + h.wire_bits(),
            SRal::Proposed { h, c } | SRal::Final { h, c } => 2 + h.wire_bits() + c.wire_bits(),
        }
    }
}

/// The §9.3 protocol.
#[derive(Clone, Copy, Debug)]
pub struct RandALogLog {
    /// Known arboricity.
    pub arboricity: usize,
    /// ε ∈ (0, 2].
    pub epsilon: f64,
}

impl RandALogLog {
    /// Standard instance (ε = 2).
    pub fn new(arboricity: usize) -> Self {
        RandALogLog {
            arboricity,
            epsilon: 2.0,
        }
    }

    /// Degree threshold `A`; per-copy palette is `A + 1`.
    pub fn cap(&self) -> usize {
        degree_cap(self.arboricity, self.epsilon)
    }

    /// Phase-1 set count `t = ⌊2 log log n⌋`, clamped ≥ 1.
    pub fn phase1_sets(&self, n: u64) -> u32 {
        ((2 * itlog::iterated_log(n.max(4), 2)) as u32).max(1)
    }

    /// Total palette bound `(t + 1)(A + 1) = O(a log log n)`.
    pub fn palette(&self, n: u64) -> u64 {
        (self.phase1_sets(n) as u64 + 1) * (self.cap() as u64 + 1)
    }

    /// Encodes a local color for a vertex of H-set `h`.
    fn encode(&self, n: u64, h: u32, c: u64) -> u64 {
        let t = self.phase1_sets(n);
        let copy = if h <= t { h as u64 - 1 } else { t as u64 };
        copy * (self.cap() as u64 + 1) + c
    }
}

impl Protocol for RandALogLog {
    type State = SRal;
    type Msg = SRal;
    type Output = u64;

    fn publish(&self, state: &SRal) -> SRal {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, SRal>) -> Transition<SRal, u64> {
        let n = ctx.graph.n() as u64;
        let t = self.phase1_sets(n);
        let a1 = self.cap() as u64 + 1;
        match ctx.state.clone() {
            SRal::Active => {
                let active = ctx
                    .view
                    .neighbors()
                    .filter(|(_, s)| matches!(s, SRal::Active))
                    .count();
                if partition_step(active, self.cap()) {
                    Transition::Continue(SRal::Idle { h: ctx.round })
                } else {
                    Transition::Continue(SRal::Active)
                }
            }
            SRal::Idle { h } => {
                // Propose on odd global rounds only (resolve rounds are
                // even), keeping all proposers aligned.
                if ctx.round.is_multiple_of(2) {
                    return Transition::Continue(SRal::Idle { h });
                }
                let phase2 = h > t;
                if phase2 {
                    // Wait for all later/unjoined neighbors to finalize.
                    let ready = ctx.view.neighbors().all(|(_, s)| match s {
                        SRal::Active => false,
                        SRal::Final { .. } => true,
                        other => other.h().is_some_and(|j| j <= h),
                    });
                    if !ready {
                        return Transition::Continue(SRal::Idle { h });
                    }
                }
                let mut rng = ctx.rng();
                if !rng.gen_bool(0.5) {
                    return Transition::Continue(SRal::Idle { h });
                }
                // Blocked colors: finalized conflict-relevant neighbors.
                // Phase 1: same-set only (other sets use other copies).
                // Phase 2: any phase-2 neighbor in H_{≥h} (shared copy).
                let taken: Vec<u64> = ctx
                    .view
                    .neighbors()
                    .filter_map(|(_, s)| match s {
                        SRal::Final { h: j, c } => {
                            let relevant = if phase2 { *j > t } else { *j == h };
                            // Decode back to the local color.
                            relevant.then(|| *c % a1)
                        }
                        _ => None,
                    })
                    .collect();
                let free: Vec<u64> = (0..a1).filter(|c| !taken.contains(c)).collect();
                let &c = free
                    .choose(&mut rng)
                    .expect("A+1 colors vs ≤ A relevant neighbors");
                Transition::Continue(SRal::Proposed { h, c })
            }
            SRal::Proposed { h, c } => {
                let phase2 = h > t;
                let conflict = ctx.view.neighbors().any(|(_, s)| match s {
                    SRal::Proposed { h: j, c: c2 } => {
                        let relevant = if phase2 { *j > t } else { *j == h };
                        relevant && *c2 == c
                    }
                    SRal::Final { h: j, c: c2 } => {
                        let relevant = if phase2 { *j > t } else { *j == h };
                        relevant && *c2 % a1 == c
                    }
                    _ => false,
                });
                if conflict {
                    Transition::Continue(SRal::Idle { h })
                } else {
                    let fin = self.encode(n, h, c);
                    Transition::Terminate(SRal::Final { h, c: fin }, fin)
                }
            }
            SRal::Final { .. } => unreachable!("terminal"),
        }
    }

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> SRal {
        SRal::Active
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        let lg = (g.n().max(4) as u32).ilog2();
        // Phase 2 is sequential over O(log n) sets, O(log n) phases each
        // w.h.p.
        64 * lg * lg + 512
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_seeded(g: &Graph, a: usize, seed: u64) -> (f64, u32, usize) {
        let p = RandALogLog::new(a);
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).seed(seed).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            g,
            &out.outputs,
            p.palette(g.n() as u64) as usize,
        ));
        (
            out.metrics.vertex_averaged(),
            out.metrics.worst_case(),
            verify::count_distinct(&out.outputs),
        )
    }

    #[test]
    fn proper_across_seeds_and_families() {
        for seed in 0..4 {
            run_seeded(&gen::cycle(101), 2, seed);
            run_seeded(&gen::grid(9, 10), 2, seed);
            run_seeded(&gen::path(80), 1, seed);
        }
    }

    #[test]
    fn proper_on_forest_unions() {
        let mut rng = ChaCha8Rng::seed_from_u64(140);
        for a in [2usize, 4] {
            let gg = gen::forest_union(800, a, &mut rng);
            run_seeded(&gg.graph, a, 3);
        }
    }

    #[test]
    fn va_constant_theorem_9_2() {
        let mut rng = ChaCha8Rng::seed_from_u64(141);
        let mut vas = Vec::new();
        for n in [1024usize, 8192, 32768] {
            let gg = gen::forest_union(n, 2, &mut rng);
            let (va, _, _) = run_seeded(&gg.graph, 2, 11);
            assert!(va <= 16.0, "n={n}: VA={va} not O(1)");
            vas.push(va);
        }
        assert!(vas[2] <= vas[0] + 3.0, "VA drifting upward: {vas:?}");
    }

    #[test]
    fn colors_scale_with_a_loglog_not_delta() {
        // Hub graphs: Δ large, palette must stay (t+1)(A+1).
        let mut rng = ChaCha8Rng::seed_from_u64(142);
        let hub = gen::hub_forest(2000, 2, 4, 300, &mut rng);
        let p = RandALogLog::new(hub.arboricity);
        let (_, _, used) = run_seeded(&hub.graph, hub.arboricity, 9);
        assert!(used as u64 <= p.palette(2000));
        assert!((p.palette(2000) as usize) < hub.graph.max_degree());
    }
}
