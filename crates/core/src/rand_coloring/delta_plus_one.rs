//! §9.2 — randomized `(Δ+1)`-vertex-coloring with `O(1)` vertex-averaged
//! complexity w.h.p. (Theorem 9.1; Procedure Rand-Delta-Plus1 of \[4\], a
//! Luby-style variant \[21\]).
//!
//! Each *phase* is two rounds (the LOCAL-model realization of "draw and
//! compare within one round"):
//!
//! 1. **Propose.** With probability ½ an undecided vertex draws a color
//!    uniformly from `{0..Δ} ∖ F_v` (`F_v` = final colors of decided
//!    neighbors) and publishes it.
//! 2. **Resolve.** A proposer whose color collides with no neighbor's
//!    simultaneous proposal and no newly-final neighbor color fixes it as
//!    final and terminates.
//!
//! A vertex succeeds in a phase with probability ≥ ¼, so the active set
//! decays geometrically in expectation and w.h.p. — vertex-averaged
//! complexity `O(1)` — while the worst case is `Θ(log n)` w.h.p.

use graphcore::{Graph, IdAssignment, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;
use simlocal::{Protocol, StepCtx, Transition, WireSize};

/// Per-vertex state.
#[derive(Clone, Debug)]
pub enum SRand {
    /// No live proposal this phase.
    Idle,
    /// Proposed a color this phase.
    Proposed(u64),
    /// Final color (terminal, published).
    Final(u64),
}

impl WireSize for SRand {
    fn wire_bits(&self) -> u64 {
        // 2-bit tag for three variants, then the payload.
        match self {
            SRand::Idle => 2,
            SRand::Proposed(c) | SRand::Final(c) => 2 + c.wire_bits(),
        }
    }
}

/// The §9.2 protocol. The palette may be overridden (the §9.3 algorithm
/// reuses this logic per H-set with palette `A + 1`).
#[derive(Clone, Copy, Debug)]
pub struct RandDeltaPlusOne {
    /// Palette size; `None` = `Δ + 1` read from the graph.
    pub palette: Option<u64>,
}

impl RandDeltaPlusOne {
    /// Standard `(Δ+1)`-coloring instance.
    pub fn new() -> Self {
        RandDeltaPlusOne { palette: None }
    }

    /// Effective palette size on `g`.
    pub fn palette_on(&self, g: &Graph) -> u64 {
        self.palette.unwrap_or(g.max_degree() as u64 + 1)
    }
}

impl Default for RandDeltaPlusOne {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for RandDeltaPlusOne {
    type State = SRand;
    type Msg = SRand;
    type Output = u64;

    fn init(&self, _: &Graph, _: &IdAssignment, _: VertexId) -> SRand {
        SRand::Idle
    }

    fn publish(&self, state: &SRand) -> SRand {
        state.clone()
    }

    fn step(&self, ctx: StepCtx<'_, SRand>) -> Transition<SRand, u64> {
        let palette = self.palette_on(ctx.graph);
        if ctx.round % 2 == 1 {
            // Propose.
            let mut rng = ctx.rng();
            if !rng.gen_bool(0.5) {
                return Transition::Continue(SRand::Idle);
            }
            let taken: Vec<u64> = ctx
                .view
                .neighbors()
                .filter_map(|(_, s)| match s {
                    SRand::Final(c) => Some(*c),
                    _ => None,
                })
                .collect();
            let free: Vec<u64> = (0..palette).filter(|c| !taken.contains(c)).collect();
            let &c = free
                .choose(&mut rng)
                .expect("palette Δ+1 exceeds the number of decided neighbors");
            Transition::Continue(SRand::Proposed(c))
        } else {
            // Resolve.
            match *ctx.state {
                SRand::Idle => Transition::Continue(SRand::Idle),
                SRand::Proposed(c) => {
                    let conflict = ctx.view.neighbors().any(|(_, s)| match s {
                        SRand::Proposed(c2) | SRand::Final(c2) => *c2 == c,
                        SRand::Idle => false,
                    });
                    if conflict {
                        Transition::Continue(SRand::Idle)
                    } else {
                        Transition::Terminate(SRand::Final(c), c)
                    }
                }
                SRand::Final(_) => unreachable!("terminal"),
            }
        }
    }

    fn max_rounds(&self, g: &Graph) -> u32 {
        // O(log n) phases w.h.p.; generous slack before declaring failure.
        128 * (g.n().max(4) as u32).ilog2() + 256
    }

    fn phase_names(&self) -> &'static [&'static str] {
        &["undecided", "proposed"]
    }

    fn phase_of(&self, state: &SRand) -> simlocal::PhaseId {
        // Attribution is by the state the round is entered with: rounds
        // entered without a live proposal vs. rounds spent resolving one.
        match state {
            SRand::Idle => 0,
            SRand::Proposed(_) | SRand::Final(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{gen, verify, IdAssignment};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_seeded(g: &Graph, seed: u64) -> (Vec<u64>, f64, u32) {
        let p = RandDeltaPlusOne::new();
        let ids = IdAssignment::identity(g.n());
        let out = simlocal::Runner::new(&p, g, &ids).seed(seed).run().unwrap();
        verify::assert_ok(verify::proper_vertex_coloring(
            g,
            &out.outputs,
            g.max_degree() + 1,
        ));
        (
            out.outputs,
            out.metrics.vertex_averaged(),
            out.metrics.worst_case(),
        )
    }

    #[test]
    fn proper_across_seeds_and_families() {
        for seed in 0..5 {
            run_seeded(&gen::cycle(101), seed);
            run_seeded(&gen::grid(9, 9), seed);
            run_seeded(&gen::clique(15), seed);
            run_seeded(&gen::star(40), seed);
        }
    }

    #[test]
    fn proper_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(130);
        let gg = gen::gnp(400, 0.02, &mut rng);
        run_seeded(&gg.graph, 7);
        let ba = gen::preferential_attachment(500, 3, &mut rng);
        run_seeded(&ba.graph, 8);
    }

    #[test]
    fn vertex_averaged_constant_theorem_9_1() {
        // VA stays bounded (≈ 2·(expected 4 phases)) as n grows.
        let mut rng = ChaCha8Rng::seed_from_u64(131);
        let mut vas = Vec::new();
        for n in [512usize, 4096, 32768] {
            let gg = gen::forest_union(n, 2, &mut rng);
            let (_, va, _) = run_seeded(&gg.graph, 99);
            assert!(va <= 12.0, "n={n}: VA={va} not O(1)");
            vas.push(va);
        }
        assert!(vas[2] <= vas[0] + 2.0, "VA drifting upward: {vas:?}");
    }

    #[test]
    fn worst_case_exceeds_average() {
        let mut rng = ChaCha8Rng::seed_from_u64(132);
        let gg = gen::forest_union(16384, 2, &mut rng);
        let (_, va, wc) = run_seeded(&gg.graph, 5);
        assert!((wc as f64) > 2.0 * va, "wc={wc} va={va}");
    }

    #[test]
    fn different_seeds_different_colorings() {
        let g = gen::cycle(64);
        let (a, _, _) = run_seeded(&g, 1);
        let (b, _, _) = run_seeded(&g, 2);
        assert_ne!(a, b);
    }
}
